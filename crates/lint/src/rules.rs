//! The rule engine: path-resolution-lite static checks over token streams.
//!
//! Rules never see raw text — they see the [`crate::lexer`] token stream
//! (comments and literal contents already stripped, `#[cfg(test)]` items
//! removed) plus a per-file *import map* built from `use` declarations. That
//! is enough path resolution to tell `ac3_sim::World` from
//! `ProtocolError::World` and `std::time::Instant` from the chain's
//! `SealPolicy::Instant` without a type checker.

use crate::lexer::{Lexed, Spanned, Tok, Waiver};
use crate::report::Finding;
use std::collections::BTreeMap;

/// One parsed `use` import: the full path and the name it binds locally
/// (the leaf segment, an `as` rename, or `*` for a glob).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// Full path segments, e.g. `["std", "time", "Instant"]`.
    pub path: Vec<String>,
    /// The locally bound name (`Instant`, a rename, or `*`).
    pub alias: String,
    /// 1-indexed line of the binding.
    pub line: u32,
}

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    /// Token stream with `#[cfg(test)]` items stripped.
    pub tokens: &'a [Spanned],
    /// Inline waivers from line comments.
    pub waivers: &'a [Waiver],
    /// Imports parsed from `use` declarations.
    pub imports: &'a [Import],
}

impl FileCtx<'_> {
    /// Whether a waiver with `tag` (and a non-empty reason) covers `line` —
    /// i.e. sits on the line itself or the line immediately above.
    pub fn waived(&self, tag: &str, line: u32) -> Option<&Waiver> {
        self.waivers.iter().find(|w| {
            w.tag == tag && !w.reason.is_empty() && (w.line == line || w.line + 1 == line)
        })
    }

    /// The import binding `name`, if any.
    pub fn import_of(&self, name: &str) -> Option<&Import> {
        self.imports.iter().find(|i| i.alias == name)
    }
}

/// Parse every `use` declaration in a token stream into flat imports.
pub fn parse_imports(tokens: &[Spanned]) -> Vec<Import> {
    let mut imports = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Tok::Ident(id) = &tokens[i].tok {
            // `use` at item position: not part of a path or a field access.
            let prev = i.checked_sub(1).map(|p| &tokens[p].tok);
            let is_item =
                id == "use" && !matches!(prev, Some(Tok::PathSep) | Some(Tok::Punct('.')));
            if is_item {
                let line = tokens[i].line;
                let end = tokens[i + 1..]
                    .iter()
                    .position(|s| s.tok == Tok::Punct(';'))
                    .map(|p| i + 1 + p)
                    .unwrap_or(tokens.len());
                let mut cursor = i + 1;
                parse_use_tree(tokens, &mut cursor, end, &mut Vec::new(), line, &mut imports);
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    imports
}

/// Recursive descent over one `use` tree between `cursor` and `end`.
fn parse_use_tree(
    tokens: &[Spanned],
    cursor: &mut usize,
    end: usize,
    prefix: &mut Vec<String>,
    line: u32,
    out: &mut Vec<Import>,
) {
    let depth_at_entry = prefix.len();
    let mut last: Option<String> = None;
    while *cursor < end {
        match &tokens[*cursor].tok {
            Tok::Ident(id) if id == "as" => {
                // Rename: `path as Name`.
                *cursor += 1;
                if let Some(Tok::Ident(alias)) = tokens.get(*cursor).map(|s| &s.tok) {
                    if let Some(leaf) = last.take() {
                        prefix.push(leaf);
                        out.push(Import { path: prefix.clone(), alias: alias.clone(), line });
                        prefix.pop();
                    }
                    *cursor += 1;
                }
            }
            Tok::Ident(id) => {
                if let Some(leaf) = last.replace(id.clone()) {
                    // Two idents without `::` should not happen; keep the
                    // newer one but emit the older as a leaf for safety.
                    prefix.push(leaf.clone());
                    out.push(Import { path: prefix.clone(), alias: leaf, line });
                    prefix.pop();
                }
                *cursor += 1;
            }
            Tok::PathSep => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                *cursor += 1;
            }
            Tok::Punct('*') => {
                out.push(Import {
                    path: {
                        let mut p = prefix.clone();
                        p.push("*".to_string());
                        p
                    },
                    alias: "*".to_string(),
                    line,
                });
                *cursor += 1;
            }
            Tok::Punct('{') => {
                *cursor += 1;
                parse_use_tree(tokens, cursor, end, prefix, line, out);
            }
            Tok::Punct('}') => {
                if let Some(leaf) = last.take() {
                    prefix.push(leaf.clone());
                    out.push(Import { path: prefix.clone(), alias: leaf, line });
                    prefix.pop();
                }
                prefix.truncate(depth_at_entry);
                *cursor += 1;
                return;
            }
            Tok::Punct(',') => {
                if let Some(leaf) = last.take() {
                    prefix.push(leaf.clone());
                    out.push(Import { path: prefix.clone(), alias: leaf, line });
                    prefix.pop();
                }
                prefix.truncate(depth_at_entry);
                *cursor += 1;
            }
            _ => {
                *cursor += 1;
            }
        }
    }
    if let Some(leaf) = last.take() {
        prefix.push(leaf.clone());
        out.push(Import { path: prefix.clone(), alias: leaf, line });
        prefix.pop();
    }
    prefix.truncate(depth_at_entry);
}

/// Walk back from a `Name` preceded by `::` to the head segment of its
/// path: for `a::b::Name` at index `i` of `Name`, returns `Some("a")`.
fn path_head(tokens: &[Spanned], i: usize) -> Option<&str> {
    let mut head: Option<&str> = None;
    let mut j = i;
    while j >= 2 && tokens[j - 1].tok == Tok::PathSep {
        match &tokens[j - 2].tok {
            Tok::Ident(seg) => {
                head = Some(seg);
                j -= 2;
            }
            // `<T as Trait>::name` and similar — opaque, give up.
            _ => return None,
        }
    }
    head
}

/// The `wall-clock` rule: no `std::time` in simulated code — neither
/// imported nor named inline. Time flows only through `ChainApi::now`.
pub fn wall_clock(ctx: &FileCtx, banned_modules: &[Vec<String>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for import in ctx.imports {
        for banned in banned_modules {
            if import.path.len() >= banned.len() && import.path[..banned.len()] == banned[..] {
                findings.push(Finding::new(
                    "wall-clock",
                    ctx.path,
                    import.line,
                    format!(
                        "`{}` imported in simulated code; time flows only through `ChainApi::now`",
                        import.path.join("::")
                    ),
                ));
            }
        }
    }
    // Inline qualified paths: `std::time::…` without an import.
    for (i, s) in ctx.tokens.iter().enumerate() {
        let Tok::Ident(id) = &s.tok else { continue };
        for banned in banned_modules {
            if *id != banned[0] {
                continue;
            }
            // Must start a path (`std::`), not terminate one (`x::std`).
            if i > 0 && ctx.tokens[i - 1].tok == Tok::PathSep {
                continue;
            }
            let mut matched = true;
            for (k, seg) in banned.iter().enumerate().skip(1) {
                let sep = ctx.tokens.get(i + 2 * k - 1).map(|s| &s.tok);
                let ident = ctx.tokens.get(i + 2 * k).map(|s| &s.tok);
                if sep != Some(&Tok::PathSep) || !matches!(ident, Some(Tok::Ident(t)) if t == seg) {
                    matched = false;
                    break;
                }
            }
            if matched && !ctx.imports.iter().any(|imp| imp.line == s.line) {
                findings.push(Finding::new(
                    "wall-clock",
                    ctx.path,
                    s.line,
                    format!(
                        "`{}` named in simulated code; time flows only through `ChainApi::now`",
                        banned.join("::")
                    ),
                ));
            }
        }
    }
    findings
}

/// The `ambient-entropy` rule: seeded determinism means no OS randomness —
/// the listed identifiers may appear only inside allow-listed constructor
/// functions (e.g. a `from_seed` that documents its seeding).
pub fn ambient_entropy(ctx: &FileCtx, banned: &[String], allow_in_fns: &[String]) -> Vec<Finding> {
    let enclosing = enclosing_fns(ctx.tokens);
    let mut findings = Vec::new();
    for (i, s) in ctx.tokens.iter().enumerate() {
        let Tok::Ident(id) = &s.tok else { continue };
        if !banned.iter().any(|b| b == id) {
            continue;
        }
        if let Some(fn_name) = &enclosing[i] {
            if allow_in_fns.iter().any(|a| a == fn_name) {
                continue;
            }
        }
        if ctx.waived("entropy", s.line).is_some() {
            continue;
        }
        findings.push(Finding::new(
            "ambient-entropy",
            ctx.path,
            s.line,
            format!("`{id}` is ambient entropy; all randomness must flow from an explicit seed"),
        ));
    }
    findings
}

/// For each token index, the name of the innermost enclosing `fn`, if any.
fn enclosing_fns(tokens: &[Spanned]) -> Vec<Option<String>> {
    let mut out = vec![None; tokens.len()];
    // Stack of (fn name, brace depth at which its body opened).
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0usize;
    for (i, s) in tokens.iter().enumerate() {
        match &s.tok {
            Tok::Ident(id) if id == "fn" => {
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    pending = Some(name.clone());
                }
            }
            Tok::Punct(';') => {
                // Trait method declaration without a body.
                pending = None;
            }
            Tok::Punct('{') => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((name, depth));
                }
            }
            Tok::Punct('}') => {
                if let Some((_, d)) = stack.last() {
                    if *d == depth {
                        stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        out[i] = stack.last().map(|(name, _)| name.clone());
    }
    out
}

/// The `chainapi-seam` rule: protocol modules must not name the banned
/// type (`World`) from the banned crates (`ac3_sim`) — machines speak
/// `ChainApi` only. Applied to an explicit file list.
pub fn chainapi_seam(ctx: &FileCtx, banned_type: &str, from_crates: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for import in ctx.imports {
        let leaf_is_banned = import.path.last().map(String::as_str) == Some(banned_type)
            || import.alias == banned_type;
        let head_banned = import.path.first().is_some_and(|h| from_crates.iter().any(|c| c == h));
        let glob_of_banned_crate = import.alias == "*" && head_banned;
        if (leaf_is_banned && head_banned) || glob_of_banned_crate {
            findings.push(Finding::new(
                "chainapi-seam",
                ctx.path,
                import.line,
                format!(
                    "protocol module imports `{}`; machines must speak `ChainApi`, never `{banned_type}`",
                    import.path.join("::")
                ),
            ));
        }
    }
    for (i, s) in ctx.tokens.iter().enumerate() {
        let Tok::Ident(id) = &s.tok else { continue };
        if id != banned_type {
            continue;
        }
        // Import lines are already reported once, above.
        if ctx.imports.iter().any(|imp| imp.line == s.line) {
            continue;
        }
        let qualified = i > 0 && ctx.tokens[i - 1].tok == Tok::PathSep;
        let flagged = if qualified {
            // `head::…::World` — banned only when the path head is a
            // banned crate (so `ProtocolError::World` stays legal).
            path_head(ctx.tokens, i).is_some_and(|h| from_crates.iter().any(|c| c == h))
        } else {
            // Bare `World` — banned when an import binds it to a banned
            // crate.
            ctx.import_of(banned_type).is_some_and(|imp| {
                imp.path.first().is_some_and(|h| from_crates.iter().any(|c| c == h))
            })
        };
        if flagged {
            findings.push(Finding::new(
                "chainapi-seam",
                ctx.path,
                s.line,
                format!("protocol module names `{banned_type}`; machines must speak `ChainApi`"),
            ));
        }
    }
    findings
}

/// The `unordered-iteration` rule: iterating a `HashMap`/`HashSet` in a
/// fingerprint-relevant crate is banned unless justified inline with
/// `// lint: ordered-ok(<why>)`. Names are resolved resolution-lite: a
/// binding or field whose declared type (or constructor) names
/// `HashMap`/`HashSet` taints that identifier for the rest of the file.
pub fn unordered_iteration(ctx: &FileCtx, iter_methods: &[String]) -> Vec<Finding> {
    let hash_names = hash_typed_names(ctx.tokens);
    let mut findings = Vec::new();
    for (i, s) in ctx.tokens.iter().enumerate() {
        let Tok::Ident(id) = &s.tok else { continue };
        // `recv.method(` where method is an iteration adapter.
        if iter_methods.iter().any(|m| m == id)
            && i >= 2
            && ctx.tokens[i - 1].tok == Tok::Punct('.')
            && ctx.tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('('))
        {
            if let Tok::Ident(recv) = &ctx.tokens[i - 2].tok {
                let direct_ctor = (recv == "HashMap" || recv == "HashSet")
                    || path_head(ctx.tokens, i - 2) == Some("HashMap")
                    || path_head(ctx.tokens, i - 2) == Some("HashSet");
                if hash_names.contains_key(recv.as_str()) || direct_ctor {
                    push_unordered(ctx, &mut findings, s.line, recv, id);
                }
            }
        }
        // `for x in name {` / `for x in &name {` / `for x in &mut self.name {`
        if id == "for" {
            if let Some((recv, line)) = for_loop_hash_target(ctx.tokens, i, &hash_names) {
                push_unordered(ctx, &mut findings, line, &recv, "for-in");
            }
        }
    }
    findings
}

fn push_unordered(ctx: &FileCtx, findings: &mut Vec<Finding>, line: u32, recv: &str, how: &str) {
    if ctx.waived("ordered", line).is_some() {
        return;
    }
    let hint = if ctx.waivers.iter().any(|w| {
        w.tag == "ordered" && w.reason.is_empty() && (w.line == line || w.line + 1 == line)
    }) {
        "; the `ordered-ok()` waiver needs a non-empty justification"
    } else {
        ""
    };
    findings.push(Finding::new(
        "unordered-iteration",
        ctx.path,
        line,
        format!(
            "`{recv}` is a hash container; `{how}` iterates it in nondeterministic order — \
             justify with `// lint: ordered-ok(<why>)` or switch to an ordered structure{hint}"
        ),
    ));
}

/// Names declared with a `HashMap`/`HashSet` type or constructor, mapped to
/// the declaration line.
fn hash_typed_names(tokens: &[Spanned]) -> BTreeMap<String, u32> {
    let mut names = BTreeMap::new();
    for (i, s) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &s.tok else { continue };
        if id != "HashMap" && id != "HashSet" {
            continue;
        }
        // Walk back over the qualifying path (`std::collections::HashMap`).
        let mut j = i;
        while j >= 2 && tokens[j - 1].tok == Tok::PathSep {
            if matches!(tokens[j - 2].tok, Tok::Ident(_)) {
                j -= 2;
            } else {
                break;
            }
        }
        // `name : [path::]HashMap<…>` (field or typed let) or
        // `name = [path::]HashMap::new()` (inferred let).
        if j >= 2 && matches!(tokens[j - 1].tok, Tok::Punct(':') | Tok::Punct('=')) {
            if let Tok::Ident(name) = &tokens[j - 2].tok {
                names.insert(name.clone(), s.line);
            }
        }
    }
    names
}

/// If the `for` loop starting at index `i` iterates a hash-typed name
/// directly (`for x in [&[mut]] [self.]name {`), return that name.
fn for_loop_hash_target(
    tokens: &[Spanned],
    i: usize,
    hash_names: &BTreeMap<String, u32>,
) -> Option<(String, u32)> {
    // Find `in` before the loop body opens.
    let mut j = i + 1;
    let mut guard = 0;
    loop {
        match tokens.get(j).map(|s| &s.tok) {
            Some(Tok::Ident(id)) if id == "in" => break,
            Some(Tok::Punct('{')) | None => return None,
            _ => {
                j += 1;
                guard += 1;
                if guard > 64 {
                    return None;
                }
            }
        }
    }
    j += 1;
    while matches!(tokens.get(j).map(|s| &s.tok), Some(Tok::Punct('&')))
        || matches!(tokens.get(j).map(|s| &s.tok), Some(Tok::Ident(id)) if id == "mut")
    {
        j += 1;
    }
    if matches!(tokens.get(j).map(|s| &s.tok), Some(Tok::Ident(id)) if id == "self")
        && tokens.get(j + 1).map(|s| &s.tok) == Some(&Tok::Punct('.'))
    {
        j += 2;
    }
    let Some(Spanned { tok: Tok::Ident(name), line }) = tokens.get(j) else { return None };
    // Direct iteration only: the next token must open the body (method
    // chains are handled by the adapter check).
    if tokens.get(j + 1).map(|s| &s.tok) != Some(&Tok::Punct('{')) {
        return None;
    }
    if hash_names.contains_key(name.as_str()) {
        Some((name.clone(), *line))
    } else {
        None
    }
}

/// The `no-unsafe` rule: the `unsafe` keyword may not appear at all, and
/// crate roots listed in `require_forbid` must carry
/// `#![forbid(unsafe_code)]`.
pub fn no_unsafe(ctx: &FileCtx, require_forbid: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    for s in ctx.tokens {
        if matches!(&s.tok, Tok::Ident(id) if id == "unsafe") {
            findings.push(Finding::new(
                "no-unsafe",
                ctx.path,
                s.line,
                "`unsafe` is banned workspace-wide (determinism and shard-safety proofs assume \
                 no aliasing escape hatches)"
                    .to_string(),
            ));
        }
    }
    if require_forbid {
        let has_forbid = ctx.tokens.windows(4).any(|w| {
            matches!(
                (&w[0].tok, &w[1].tok, &w[2].tok, &w[3].tok),
                (Tok::Ident(f), Tok::Punct('('), Tok::Ident(u), Tok::Punct(')'))
                    if f == "forbid" && u == "unsafe_code"
            )
        });
        if !has_forbid {
            findings.push(Finding::new(
                "no-unsafe",
                ctx.path,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
    findings
}

/// Build a [`FileCtx`]-ready bundle from lexed source.
pub fn prepare(lexed: Lexed) -> (Vec<Spanned>, Vec<Waiver>, Vec<Import>) {
    let tokens = crate::lexer::strip_cfg_test(lexed.tokens);
    let imports = parse_imports(&tokens);
    (tokens, lexed.waivers, imports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of<'a>(
        path: &'a str,
        tokens: &'a [Spanned],
        waivers: &'a [Waiver],
        imports: &'a [Import],
    ) -> FileCtx<'a> {
        FileCtx { path, tokens, waivers, imports }
    }

    #[test]
    fn nested_use_groups_flatten() {
        let (tokens, _, imports) = prepare(lex("use a::{b::{c, d as e}, f};"));
        let _ = tokens;
        let paths: Vec<(String, String)> =
            imports.iter().map(|i| (i.path.join("::"), i.alias.clone())).collect();
        assert_eq!(
            paths,
            vec![
                ("a::b::c".into(), "c".into()),
                ("a::b::d".into(), "e".into()),
                ("a::f".into(), "f".into()),
            ]
        );
    }

    #[test]
    fn seal_policy_instant_is_not_wall_clock() {
        let (tokens, waivers, imports) =
            prepare(lex("fn f() { let s = SealPolicy::Instant; s.target() }"));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        assert!(wall_clock(&ctx, &[vec!["std".into(), "time".into()]]).is_empty());
    }

    #[test]
    fn std_time_import_and_inline_path_are_flagged() {
        let (tokens, waivers, imports) = prepare(lex(
            "use std::time::Instant;\nfn f() { let t = std::time::SystemTime::now(); }",
        ));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        let f = wall_clock(&ctx, &[vec!["std".into(), "time".into()]]);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn protocol_error_world_is_not_a_seam_violation() {
        let (tokens, waivers, imports) =
            prepare(lex("fn f() -> ProtocolError { ProtocolError::World(\"x\".into()) }"));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        assert!(chainapi_seam(&ctx, "World", &["ac3_sim".into()]).is_empty());
    }

    #[test]
    fn imported_world_is_flagged_at_import_and_use() {
        let (tokens, waivers, imports) =
            prepare(lex("use ac3_sim::World;\nfn f(w: &mut World) {}"));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        let f = chainapi_seam(&ctx, "World", &["ac3_sim".into()]);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[1].line), (1, 2));
    }

    #[test]
    fn entropy_allowed_inside_listed_constructor() {
        let src =
            "fn from_seed(s: u64) { let r = thread_rng(); }\nfn f() { let r = thread_rng(); }";
        let (tokens, waivers, imports) = prepare(lex(src));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        let f = ambient_entropy(&ctx, &["thread_rng".into()], &["from_seed".into()]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn hash_iteration_needs_justification() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S {\n fn f(&self) { for x in self.m.values() { } } }";
        let (tokens, waivers, imports) = prepare(lex(src));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        let methods = vec!["values".to_string()];
        let f = unordered_iteration(&ctx, &methods);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn ordered_ok_waiver_suppresses_with_reason_only() {
        let src = "fn f() {\n let m = HashMap::new();\n // lint: ordered-ok(results are re-sorted)\n for x in m { }\n // lint: ordered-ok()\n for y in m { }\n}";
        let (tokens, waivers, imports) = prepare(lex(src));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        let f = unordered_iteration(&ctx, &[]);
        assert_eq!(f.len(), 1, "empty-reason waiver does not suppress");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn unsafe_and_missing_forbid_are_flagged() {
        let (tokens, waivers, imports) = prepare(lex("fn f() { unsafe { } }"));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        let f = no_unsafe(&ctx, true);
        assert_eq!(f.len(), 2);
        let (tokens, waivers, imports) = prepare(lex("#![forbid(unsafe_code)]\nfn f() {}"));
        let ctx = ctx_of("x.rs", &tokens, &waivers, &imports);
        assert!(no_unsafe(&ctx, true).is_empty());
    }
}
