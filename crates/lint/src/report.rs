//! Findings and their renderings (human text and machine-readable JSON).

use std::fmt;

/// One rule violation, attributed to a file and line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line number.
    pub line: u32,
    /// The rule that fired (e.g. `wall-clock`).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(rule: &str, file: &str, line: u32, message: String) -> Self {
        Finding { file: file.to_string(), line, rule: rule.to_string(), message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A whole lint run: findings plus coverage counters.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files lexed.
    pub files_scanned: usize,
    /// Rules that ran, in execution order.
    pub rules_run: Vec<String>,
}

impl Report {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render as a JSON document (hand-rolled: the linter is
    /// dependency-free by design, and the schema is flat).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [");
        for (i, rule) in self.rules_run.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(rule));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"finding_count\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i > 0 { ",\n    " } else { "\n    " });
            out.push_str(&format!(
                "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_string(&f.rule),
                json_string(&f.file),
                f.line,
                json_string(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: vec![Finding::new("no-unsafe", "a/b.rs", 3, "uses \"unsafe\"".into())],
            files_scanned: 2,
            rules_run: vec!["no-unsafe".into()],
        };
        let json = report.to_json();
        assert!(json.contains("\"finding_count\": 1"));
        assert!(json.contains("\\\"unsafe\\\""));
        assert!(json.contains("\"files_scanned\": 2"));
    }
}
