//! # ac3-lint
//!
//! The workspace invariant linter: a self-contained, dependency-free
//! static-analysis engine that machine-checks the source-level invariants
//! every determinism claim in this repository rests on. The rules (see
//! DESIGN.md §14 for the catalogue and semantics):
//!
//! * **wall-clock** — `std::time` (`Instant::now`, `SystemTime`, …) is
//!   banned in simulated code; time flows only through `ChainApi::now`.
//! * **ambient-entropy** — `thread_rng`/`OsRng`/`from_entropy` are banned
//!   outside allow-listed seeded constructors; all randomness flows from
//!   explicit seeds.
//! * **chainapi-seam** — protocol machine modules must not name
//!   `ac3_sim::World`; machines speak the `ChainApi` trait only.
//! * **unordered-iteration** — iterating a `HashMap`/`HashSet` in a
//!   fingerprint-relevant crate requires an inline
//!   `// lint: ordered-ok(<why>)` justification.
//! * **no-unsafe** — the `unsafe` keyword is banned workspace-wide, and
//!   listed crate roots must carry `#![forbid(unsafe_code)]`.
//!
//! There is no `syn` in `vendor/`, so the linter ships its own
//! comment/string/raw-string-aware lexer ([`lexer`]) and a
//! path-resolution-lite rule engine ([`rules`]) that builds per-file import
//! maps from `use` declarations — enough to tell `ac3_sim::World` from
//! `ProtocolError::World` and `std::time::Instant` from the chain's
//! `SealPolicy::Instant` without a type checker. `#[cfg(test)]` items are
//! stripped before rules run: the invariants bind shipped code, while test
//! harnesses legitimately build `World`s directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::Config;
pub use report::{Finding, Report};

use rules::FileCtx;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The rule names the engine understands, in execution order.
pub const RULE_NAMES: [&str; 5] =
    ["wall-clock", "ambient-entropy", "chainapi-seam", "unordered-iteration", "no-unsafe"];

/// Keys each rule section accepts (anything else is a config error).
fn allowed_keys(rule: &str) -> &'static [&'static str] {
    match rule {
        "wall-clock" => &["crates", "banned-modules"],
        "ambient-entropy" => &["crates", "banned-idents", "allow-in-fns"],
        "chainapi-seam" => &["modules", "banned-type", "from-crates"],
        "unordered-iteration" => &["crates", "iter-methods"],
        "no-unsafe" => &["crates", "require-forbid"],
        _ => &[],
    }
}

/// Validate a parsed config against the known rules and keys.
pub fn validate_config(config: &Config) -> Result<(), String> {
    for name in config.section_names() {
        if !RULE_NAMES.contains(&name) {
            return Err(format!("unknown rule section [{name}]"));
        }
        let allowed = allowed_keys(name);
        for key in config.section(name).expect("section exists").keys() {
            if !allowed.contains(&key) {
                return Err(format!("unknown key `{key}` in [{name}]"));
            }
        }
    }
    Ok(())
}

/// One lexed file ready for the rules.
struct PreparedFile {
    rel_path: String,
    tokens: Vec<lexer::Spanned>,
    waivers: Vec<lexer::Waiver>,
    imports: Vec<rules::Import>,
}

impl PreparedFile {
    fn ctx(&self) -> FileCtx<'_> {
        FileCtx {
            path: &self.rel_path,
            tokens: &self.tokens,
            waivers: &self.waivers,
            imports: &self.imports,
        }
    }
}

/// Run every configured rule over the workspace rooted at `root`.
pub fn run(root: &Path, config: &Config) -> Result<Report, String> {
    validate_config(config)?;
    let mut report = Report::default();
    // Lex each file once, shared across rules.
    let mut cache: BTreeMap<String, PreparedFile> = BTreeMap::new();

    let prepare_paths = |paths: &[PathBuf],
                         cache: &mut BTreeMap<String, PreparedFile>|
     -> Result<Vec<String>, String> {
        let mut rels = Vec::new();
        for path in paths {
            let rel = rel_path(root, path);
            if !cache.contains_key(&rel) {
                let source = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                let lexed = lexer::lex(&source);
                let (tokens, waivers, imports) = rules::prepare(lexed);
                cache.insert(
                    rel.clone(),
                    PreparedFile { rel_path: rel.clone(), tokens, waivers, imports },
                );
            }
            rels.push(rel);
        }
        Ok(rels)
    };

    for rule in RULE_NAMES {
        let Some(section) = config.section(rule) else { continue };
        report.rules_run.push(rule.to_string());
        let files: Vec<PathBuf> = if rule == "chainapi-seam" {
            section.array("modules").iter().map(|m| root.join(m)).collect()
        } else {
            let mut files = Vec::new();
            for crate_root in section.array("crates") {
                collect_rs_files(&root.join(crate_root), &mut files)?;
            }
            files.sort();
            files
        };
        let rels = prepare_paths(&files, &mut cache)?;
        for rel in &rels {
            let file = cache.get(rel).expect("prepared above");
            let ctx = file.ctx();
            let findings = match rule {
                "wall-clock" => {
                    let banned: Vec<Vec<String>> = section
                        .array("banned-modules")
                        .iter()
                        .map(|m| m.split("::").map(str::to_string).collect())
                        .collect();
                    rules::wall_clock(&ctx, &banned)
                }
                "ambient-entropy" => rules::ambient_entropy(
                    &ctx,
                    section.array("banned-idents"),
                    section.array("allow-in-fns"),
                ),
                "chainapi-seam" => rules::chainapi_seam(
                    &ctx,
                    section.string("banned-type").unwrap_or("World"),
                    section.array("from-crates"),
                ),
                "unordered-iteration" => {
                    let default_methods: Vec<String> = [
                        "iter",
                        "iter_mut",
                        "keys",
                        "values",
                        "values_mut",
                        "drain",
                        "retain",
                        "into_iter",
                        "into_keys",
                        "into_values",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                    let methods = if section.array("iter-methods").is_empty() {
                        default_methods
                    } else {
                        section.array("iter-methods").to_vec()
                    };
                    rules::unordered_iteration(&ctx, &methods)
                }
                "no-unsafe" => {
                    let require = section.array("require-forbid").iter().any(|f| f == rel.as_str());
                    rules::no_unsafe(&ctx, require)
                }
                _ => unreachable!("validated above"),
            };
            report.findings.extend(findings);
        }
        // `require-forbid` entries that no crate root in scope covered are
        // themselves checked (a missing lib.rs must not pass silently).
        if rule == "no-unsafe" {
            for required in section.array("require-forbid") {
                if !cache.contains_key(required) {
                    let path = root.join(required);
                    if path.is_file() {
                        let rels = prepare_paths(&[path], &mut cache)?;
                        let file = cache.get(&rels[0]).expect("prepared above");
                        report.findings.extend(rules::no_unsafe(&file.ctx(), true));
                    } else {
                        report.findings.push(Finding::new(
                            "no-unsafe",
                            required,
                            1,
                            "crate root listed in `require-forbid` does not exist".to_string(),
                        ));
                    }
                }
            }
        }
    }

    report.files_scanned = cache.len();
    report.findings.sort();
    report.findings.dedup();
    Ok(report)
}

/// Repo-relative path with `/` separators (stable across platforms for
/// JSON output and fixture tests).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Recursively collect `.rs` files under `dir`, sorted by path.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if dir.is_file() {
        out.push(dir.to_path_buf());
        return Ok(());
    }
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
