//! A comment/string/raw-string-aware Rust lexer.
//!
//! `ac3-lint` ships no parser dependency (the workspace vendors its own
//! third-party code and `syn` is deliberately absent), so this module
//! implements the minimal token stream the rule engine needs: identifiers,
//! punctuation, the `::` path separator, and opaque literal markers — with
//! comments, string literals (including raw/byte strings with arbitrary
//! `#` fences), char literals and lifetimes correctly skipped so a banned
//! name inside a doc comment or a format string never produces a finding.
//!
//! Line comments are additionally scanned for *waivers* of the form
//! `// lint: <tag>-ok(<reason>)`, the inline justification mechanism rules
//! can opt into (e.g. `// lint: ordered-ok(keys re-sorted before hashing)`).

/// One lexical token, with literal contents erased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// A single punctuation character (`.`, `{`, `(`, `#`, …).
    Punct(char),
    /// Any string, byte-string, raw-string or char literal.
    Str,
    /// A numeric literal.
    Num,
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-indexed line number.
    pub line: u32,
}

/// An inline justification parsed from a `// lint: <tag>-ok(<reason>)`
/// comment. A waiver suppresses findings of the matching rule on its own
/// line and the line immediately below (so a justification can sit above
/// the statement it excuses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-indexed line the comment appears on.
    pub line: u32,
    /// The waiver tag (`ordered` for `ordered-ok(..)`).
    pub tag: String,
    /// The justification text inside the parentheses (may be empty, which
    /// rules treat as an invalid waiver).
    pub reason: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literal contents stripped.
    pub tokens: Vec<Spanned>,
    /// Inline waivers found in line comments.
    pub waivers: Vec<Waiver>,
}

/// Lex `source` into a token stream plus its inline waivers.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                if let Some(waiver) = parse_waiver(&comment, line) {
                    out.waivers.push(waiver);
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nested per Rust's grammar.
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i = skip_string(&chars, i, &mut line);
                out.tokens.push(Spanned { tok: Tok::Str, line: start_line });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = chars.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(n) if n == '_' || n.is_alphabetic() => {
                        // `'a'` is a char literal; `'a` followed by anything
                        // but a closing quote is a lifetime.
                        let mut j = i + 1;
                        while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                            j += 1;
                        }
                        chars.get(j) != Some(&'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                        i += 1;
                    }
                } else {
                    let start_line = line;
                    i += 1;
                    while i < chars.len() {
                        if chars[i] == '\\' {
                            i += 2;
                        } else if chars[i] == '\'' {
                            i += 1;
                            break;
                        } else {
                            if chars[i] == '\n' {
                                line += 1;
                            }
                            i += 1;
                        }
                    }
                    out.tokens.push(Spanned { tok: Tok::Str, line: start_line });
                }
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                out.tokens.push(Spanned { tok: Tok::PathSep, line });
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Spanned { tok: Tok::Num, line: start_line });
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                let ident: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                let is_raw_prefix = matches!(ident.as_str(), "r" | "b" | "rb" | "br");
                if is_raw_prefix && matches!(chars.get(i), Some(&'"') | Some(&'#')) {
                    let start_line = line;
                    if ident.contains('r') {
                        i = skip_raw_string(&chars, i, &mut line);
                    } else if chars.get(i) == Some(&'"') {
                        i = skip_string(&chars, i, &mut line);
                    } else {
                        // `b#` is not a string start after all; emit the ident.
                        out.tokens.push(Spanned { tok: Tok::Ident(ident), line: start_line });
                        continue;
                    }
                    out.tokens.push(Spanned { tok: Tok::Str, line: start_line });
                } else {
                    out.tokens.push(Spanned { tok: Tok::Ident(ident), line });
                }
            }
            c => {
                out.tokens.push(Spanned { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// Skip a `"…"` string starting at the opening quote; returns the index
/// one past the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    debug_assert_eq!(chars[i], '"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Skip a raw string body starting at the `#`-fence or the opening quote
/// (the `r`/`br` prefix has already been consumed); returns the index one
/// past the closing quote + fence.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // Not actually a raw string; nothing sensible to do.
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Parse a `lint: <tag>-ok(<reason>)` waiver out of one line comment.
fn parse_waiver(comment: &str, line: u32) -> Option<Waiver> {
    let rest = comment.split("lint:").nth(1)?.trim_start();
    let open = rest.find('(')?;
    let tag_part = rest[..open].trim();
    let tag = tag_part.strip_suffix("-ok")?.to_string();
    let close = rest[open..].find(')').map(|p| open + p)?;
    let reason = rest[open + 1..close].trim().to_string();
    Some(Waiver { line, tag, reason })
}

/// Strip `#[cfg(test)]` items (typically `mod tests { … }`) from a token
/// stream: test code legitimately constructs `World`s, reads wall clocks in
/// harness plumbing, and iterates scratch maps, so the source-level
/// invariants apply to shipped code only.
pub fn strip_cfg_test(tokens: Vec<Spanned>) -> Vec<Spanned> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip this attribute, any further attributes, then one item.
            i = skip_attr(&tokens, i);
            while matches!(tokens.get(i).map(|s| &s.tok), Some(Tok::Punct('#'))) {
                i = skip_attr(&tokens, i);
            }
            i = skip_item(&tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Whether the token at `i` starts a `#[cfg(test)]` attribute.
fn is_cfg_test_attr(tokens: &[Spanned], i: usize) -> bool {
    let kinds: Vec<&Tok> = tokens[i..].iter().take(7).map(|s| &s.tok).collect();
    matches!(
        kinds.as_slice(),
        [Tok::Punct('#'), Tok::Punct('['), Tok::Ident(cfg), Tok::Punct('('), Tok::Ident(test), Tok::Punct(')'), Tok::Punct(']')]
            if cfg == "cfg" && test == "test"
    )
}

/// Skip a `#[…]` attribute starting at the `#`; returns the index one past
/// the closing `]`.
fn skip_attr(tokens: &[Spanned], mut i: usize) -> usize {
    debug_assert!(matches!(tokens[i].tok, Tok::Punct('#')));
    i += 1; // '#'
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Skip one item: everything up to the first `;` at brace depth zero, or a
/// balanced `{ … }` block, whichever comes first.
fn skip_item(tokens: &[Spanned], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct(';') if depth == 0 => return i + 1,
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r##"
            // SystemTime in a comment
            /* Instant::now() in /* a nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"OsRng inside a raw "string""#;
            let c = 'W';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "SystemTime" || i == "Instant" || i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "OsRng"));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        // The lexer must not treat `'a>(…` as a char literal and swallow
        // the parameter list.
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::time::Instant");
        let kinds: Vec<&Tok> = lexed.tokens.iter().map(|s| &s.tok).collect();
        assert_eq!(kinds.len(), 5);
        assert!(matches!(kinds[1], Tok::PathSep));
        assert!(matches!(kinds[3], Tok::PathSep));
    }

    #[test]
    fn waivers_parse_tag_and_reason() {
        let lexed = lex("map.iter(); // lint: ordered-ok(collected into a BTreeMap below)\n");
        assert_eq!(lexed.waivers.len(), 1);
        assert_eq!(lexed.waivers[0].tag, "ordered");
        assert_eq!(lexed.waivers[0].reason, "collected into a BTreeMap below");
        assert_eq!(lexed.waivers[0].line, 1);
    }

    #[test]
    fn cfg_test_modules_are_stripped() {
        let src = "
            fn shipped() {}
            #[cfg(test)]
            mod tests {
                use ac3_sim::World;
                fn t() { let w = World::new(); }
            }
            fn also_shipped() {}
        ";
        let lexed = lex(src);
        let stripped = strip_cfg_test(lexed.tokens);
        let ids: Vec<&str> = stripped
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(t) => Some(t.as_str()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"shipped"));
        assert!(ids.contains(&"also_shipped"));
        assert!(!ids.contains(&"World"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\none\";\nlet target = 3;";
        let lexed = lex(src);
        let target =
            lexed.tokens.iter().find(|s| matches!(&s.tok, Tok::Ident(t) if t == "target")).unwrap();
        assert_eq!(target.line, 3);
    }
}
