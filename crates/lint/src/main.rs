//! The `ac3-lint` binary: machine-check the workspace invariants.
//!
//! ```text
//! ac3-lint [--check] [--config lint.toml] [--root DIR] [--json PATH|-]
//! ```
//!
//! * `--check`   exit non-zero when any finding survives (CI mode).
//! * `--config`  path to the rule configuration (default `lint.toml`,
//!   resolved against `--root`).
//! * `--root`    workspace root to scan (default: the current directory —
//!   `cargo run -p ac3-lint` runs from the workspace root).
//! * `--json`    write the machine-readable report to a file (`-` for
//!   stdout).
//!
//! Exit codes: `0` clean, `1` findings, `2` usage/config/IO error.

#![forbid(unsafe_code)]

use ac3_lint::{run, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a path"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(v),
                None => return usage("--json needs a path (or `-` for stdout)"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "ac3-lint: workspace invariant linter\n\
                     usage: ac3-lint [--check] [--config lint.toml] [--root DIR] [--json PATH|-]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ac3-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::parse(&config_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ac3-lint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match run(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ac3-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    println!(
        "ac3-lint: {} file(s) scanned, {} rule(s) run, {} finding(s)",
        report.files_scanned,
        report.rules_run.len(),
        report.findings.len()
    );

    if let Some(path) = json_path {
        let json = report.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(&path, json) {
            eprintln!("ac3-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if check && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ac3-lint: {msg} (see --help)");
    ExitCode::from(2)
}
