//! Fixture: an unsafe block in a crate root missing the forbid attribute.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
