//! Fixture: `Instant` as an enum variant is not the wall clock.

pub enum SealPolicy {
    Instant,
    Delayed(u64),
}

pub fn pick() -> SealPolicy {
    SealPolicy::Instant
}
