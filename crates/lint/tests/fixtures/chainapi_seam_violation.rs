//! Fixture: a protocol module reaching around the ChainApi seam.

use ac3_sim::World;

pub fn poke(world: &mut World) {
    world.advance(1_000);
}
