//! Fixture: a clean crate root.
#![forbid(unsafe_code)]

pub fn safe() -> u8 {
    0
}
