//! Fixture: `ProtocolError::World` is legal — its path head is an enum,
//! not the `ac3_sim` crate.

pub fn fail() -> ProtocolError {
    ProtocolError::World("broken".to_string())
}
