//! Fixture: ambient entropy outside an allow-listed constructor.

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next()
}

pub fn seed_os() -> u64 {
    OsRng.next_u64()
}
