//! Fixture: entropy confined to the allow-listed seeded constructor.

pub fn from_seed(seed: u64) -> u64 {
    let mut rng = thread_rng();
    rng.next() ^ seed
}
