//! Fixture: justified hash iteration and ordered structures.

use std::collections::{BTreeMap, HashMap};

pub struct Index {
    lookup: HashMap<String, u64>,
    ordered: BTreeMap<String, u64>,
}

impl Index {
    pub fn checksum(&self) -> u64 {
        let mut keys: Vec<&String> = Vec::new();
        // lint: ordered-ok(keys are collected and sorted before hashing)
        for k in self.lookup.keys() {
            keys.push(k);
        }
        keys.sort();
        keys.len() as u64
    }

    pub fn first(&self) -> Option<u64> {
        self.ordered.values().next().copied()
    }
}
