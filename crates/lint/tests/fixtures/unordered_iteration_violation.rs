//! Fixture: hash-container iteration without justification.

use std::collections::{HashMap, HashSet};

pub struct Scores {
    table: HashMap<String, u64>,
}

impl Scores {
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for v in self.table.values() {
            sum += v;
        }
        sum
    }
}

pub fn drain_all() {
    let mut pending = HashSet::new();
    pending.insert(1u32);
    for item in pending {
        drop(item);
    }
}
