//! Fixture: names the wall clock both ways the rule detects.

use std::time::Instant;

pub fn elapsed_ms() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    let start = Instant::now();
    drop(start);
    7
}
