//! Fixture-corpus tests: every rule is exercised against a violating and a
//! clean fixture, and the exact `(rule, file, line)` attributions are pinned.
//!
//! The fixtures live under `tests/fixtures/` (outside any `src/` root, so the
//! committed `lint.toml` never scans them) and the configuration here is
//! built programmatically so the corpus is independent of the workspace's
//! real rule scope.

use ac3_lint::config::Section;
use ac3_lint::{run, Config};
use std::path::Path;

/// A config whose five rules all point at the fixture corpus.
fn fixture_config() -> Config {
    let mut config = Config::default();

    let mut wall_clock = Section::default();
    wall_clock.set_array("crates", vec!["tests/fixtures"]);
    wall_clock.set_array("banned-modules", vec!["std::time"]);
    config.set_section("wall-clock", wall_clock);

    let mut entropy = Section::default();
    entropy.set_array("crates", vec!["tests/fixtures"]);
    entropy.set_array("banned-idents", vec!["thread_rng", "OsRng", "from_entropy"]);
    entropy.set_array("allow-in-fns", vec!["from_seed"]);
    config.set_section("ambient-entropy", entropy);

    let mut seam = Section::default();
    seam.set_array(
        "modules",
        vec!["tests/fixtures/chainapi_seam_violation.rs", "tests/fixtures/chainapi_seam_clean.rs"],
    );
    seam.set_string("banned-type", "World");
    seam.set_array("from-crates", vec!["ac3_sim"]);
    config.set_section("chainapi-seam", seam);

    let mut iteration = Section::default();
    iteration.set_array("crates", vec!["tests/fixtures"]);
    config.set_section("unordered-iteration", iteration);

    let mut no_unsafe = Section::default();
    no_unsafe.set_array("crates", vec!["tests/fixtures"]);
    no_unsafe.set_array("require-forbid", vec!["tests/fixtures/no_unsafe_violation.rs"]);
    config.set_section("no-unsafe", no_unsafe);

    config
}

#[test]
fn fixture_corpus_produces_exact_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root, &fixture_config()).expect("lint run succeeds");

    let got: Vec<(&str, &str, u32)> =
        report.findings.iter().map(|f| (f.rule.as_str(), f.file.as_str(), f.line)).collect();

    // Sorted by (file, line): the linter's output order is part of its
    // contract (stable JSON artifacts, diffable CI logs).
    let expected: Vec<(&str, &str, u32)> = vec![
        ("ambient-entropy", "tests/fixtures/ambient_entropy_violation.rs", 4),
        ("ambient-entropy", "tests/fixtures/ambient_entropy_violation.rs", 9),
        ("chainapi-seam", "tests/fixtures/chainapi_seam_violation.rs", 3),
        ("chainapi-seam", "tests/fixtures/chainapi_seam_violation.rs", 5),
        ("no-unsafe", "tests/fixtures/no_unsafe_violation.rs", 1),
        ("no-unsafe", "tests/fixtures/no_unsafe_violation.rs", 4),
        ("unordered-iteration", "tests/fixtures/unordered_iteration_violation.rs", 12),
        ("unordered-iteration", "tests/fixtures/unordered_iteration_violation.rs", 22),
        ("wall-clock", "tests/fixtures/wall_clock_violation.rs", 3),
        ("wall-clock", "tests/fixtures/wall_clock_violation.rs", 6),
    ];
    assert_eq!(got, expected, "findings:\n{:#?}", report.findings);

    // No clean fixture contributes a finding.
    for f in &report.findings {
        assert!(!f.file.ends_with("_clean.rs"), "clean fixture flagged: {f}");
    }
    assert_eq!(report.files_scanned, 10);
    assert_eq!(report.rules_run.len(), 5);
}

#[test]
fn waiver_requires_reason() {
    // The clean iteration fixture relies on a waiver WITH a reason; the same
    // file minus the reason must be flagged. Rather than duplicating the
    // fixture, assert the violating fixture's unjustified loops are the only
    // iteration findings — the waivered loop in the clean fixture iterates an
    // identically-tainted HashMap field.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root, &fixture_config()).expect("lint run succeeds");
    let iteration: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "unordered-iteration")
        .map(|f| f.file.as_str())
        .collect();
    assert_eq!(
        iteration,
        vec![
            "tests/fixtures/unordered_iteration_violation.rs",
            "tests/fixtures/unordered_iteration_violation.rs"
        ]
    );
}

#[test]
fn json_report_round_trips_fixture_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = run(root, &fixture_config()).expect("lint run succeeds");
    let json = report.to_json();
    assert!(json.contains("\"finding_count\": 10"));
    assert!(json.contains("\"files_scanned\": 10"));
    assert!(json.contains("\"rule\": \"chainapi-seam\""));
    assert!(json.contains("\"file\": \"tests/fixtures/wall_clock_violation.rs\""));
}
