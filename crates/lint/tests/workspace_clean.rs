//! The committed `lint.toml` must hold against the workspace it ships with.
//!
//! This is the same check CI's `lint` job runs via the binary; keeping it as
//! a test means `cargo test` alone catches a reintroduced violation.

use ac3_lint::{run, validate_config, Config};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn committed_config_parses_and_validates() {
    let text = std::fs::read_to_string(workspace_root().join("lint.toml"))
        .expect("lint.toml exists at the workspace root");
    let config = Config::parse(&text).expect("lint.toml parses");
    validate_config(&config).expect("lint.toml names only known rules and keys");
    // All five rules must be configured — dropping a section silently
    // disables the rule, and that must be a deliberate, reviewed change.
    for rule in ac3_lint::RULE_NAMES {
        assert!(config.section(rule).is_some(), "rule [{rule}] missing from lint.toml");
    }
}

#[test]
fn workspace_is_clean_under_committed_config() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml exists");
    let config = Config::parse(&text).expect("lint.toml parses");
    let report = run(root, &config).expect("lint run succeeds");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.findings.iter().map(|f| format!("  {f}")).collect::<Vec<_>>().join("\n")
    );
    // Sanity: the run actually covered the first-party source tree.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
}
