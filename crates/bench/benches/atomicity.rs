//! Criterion bench backing experiment E6: the cost of executing the
//! crash-failure scenario under the baseline (Nolan) and under AC3WN, and a
//! correctness assertion embedded in the bench (the baseline must violate
//! atomicity, AC3WN must not) so regressions show up even in bench runs.

use ac3_core::scenario::{two_party_scenario, ScenarioConfig};
use ac3_core::{Ac3wn, Nolan, ProtocolConfig};
use ac3_sim::CrashWindow;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

fn crashed_scenario() -> ac3_core::Scenario {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    s.participants
        .get_mut("bob")
        .unwrap()
        .schedule_crash(CrashWindow { from: 9_000, until: 10_000_000 });
    s
}

fn bench_crash_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("crash_failure");
    group.sample_size(10);
    group.bench_function("nolan_crash_violation", |b| {
        b.iter_batched(
            crashed_scenario,
            |mut s| {
                let report = Nolan::new(protocol_cfg()).execute(&mut s).unwrap();
                assert!(!report.is_atomic(), "Nolan must lose atomicity here");
                std::hint::black_box(report.latency_ms())
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ac3wn_crash_atomic", |b| {
        b.iter_batched(
            crashed_scenario,
            |mut s| {
                let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
                assert!(report.is_atomic(), "AC3WN must stay atomic here");
                std::hint::black_box(report.latency_ms())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_crash_scenarios
}
criterion_main!(benches);
