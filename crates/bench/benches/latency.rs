//! Criterion bench backing Figure 10 (experiment E1): end-to-end swap
//! execution, Herlihy vs AC3WN, at two graph diameters. The measured
//! quantity here is wall-clock simulation cost; the figure itself (latency
//! in Δ units) is produced by the `fig10_latency` binary — this bench keeps
//! the protocol drivers honest about their own overhead and provides a
//! regression guard.

use ac3_core::scenario::{ring_scenario, ScenarioConfig};
use ac3_core::{Ac3wn, Herlihy, ProtocolConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

fn bench_swap_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_execution");
    group.sample_size(10);
    for diameter in [2usize, 4] {
        group.bench_function(format!("herlihy/diam{diameter}"), |b| {
            b.iter_batched(
                || ring_scenario(diameter, 10, &ScenarioConfig::default()),
                |mut s| {
                    let report = Herlihy::new(protocol_cfg()).execute(&mut s).unwrap();
                    assert!(report.is_atomic());
                    std::hint::black_box(report.latency_in_deltas())
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("ac3wn/diam{diameter}"), |b| {
            b.iter_batched(
                || ring_scenario(diameter, 10, &ScenarioConfig::default()),
                |mut s| {
                    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
                    assert!(report.is_atomic());
                    std::hint::black_box(report.latency_in_deltas())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_swap_execution
}
criterion_main!(benches);
