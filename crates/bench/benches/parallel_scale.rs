//! Criterion bench of the parallel sharded scheduler's raw throughput:
//! wall-clock time to drive the acceptance batch — 50 disjoint clusters,
//! 200 chains, 1,000 mixed-protocol swaps — serially versus with a worker
//! pool. The simulated outcome is bitwise identical at every worker count
//! (the determinism suite proves it); this bench measures only the
//! scheduler loop's real-time cost.
//!
//! On hosts with ≥ 4 available cores the bench *asserts* the ISSUE's
//! acceptance bound — at least 2× speedup at 4 workers over serial — after
//! the criterion samples are reported. On smaller hosts (CI shared
//! runners, containers pinned to one core) the assertion is skipped with a
//! note: threads timeslicing a single core cannot demonstrate a physical
//! speedup, only the overhead of trying.

use ac3_chain::ChainParams;
use ac3_core::scenario::{clustered_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{Ac3tw, Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::SwapId;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::{Duration, Instant};

const CLUSTERS: usize = 50;
const SWAPS_PER_CLUSTER: usize = 20;
/// 3 asset chains + 1 witness chain per cluster × 50 clusters = 200 chains.
const CHAINS_PER_CLUSTER: usize = 3;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        wait_cap_deltas: 64,
        ..Default::default()
    }
}

fn build_scenario() -> MultiSwapScenario {
    let cfg = ScenarioConfig {
        asset_chain_template: ChainParams::fast("asset", 1_000),
        witness_chain_template: ChainParams::fast("witness", 2),
        funding: 1_000,
    };
    clustered_swaps_scenario(CLUSTERS, SWAPS_PER_CLUSTER, CHAINS_PER_CLUSTER, &cfg)
}

fn mixed_machines(s: &MultiSwapScenario) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    s.swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

/// One full scheduled run at `workers` threads; returns its wall time.
fn run_batch(workers: usize) -> Duration {
    let mut s = build_scenario();
    let machines = mixed_machines(&s);
    let t0 = Instant::now();
    let batch =
        Scheduler::default().with_workers(workers).run(&mut s.world, &mut s.participants, machines);
    let wall = t0.elapsed();
    assert_eq!(batch.failed(), 0, "workers={workers}: no swap may error");
    assert!(batch.all_atomic(), "workers={workers}: atomicity audit failed");
    wall
}

fn bench_parallel_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scale");
    group.sample_size(2);
    for workers in [1usize, 4] {
        group.bench_function(format!("{CLUSTERS}clusters_1k_swaps/{workers}workers"), |b| {
            b.iter_batched(
                build_scenario,
                |mut s| {
                    let machines = mixed_machines(&s);
                    let batch = Scheduler::default().with_workers(workers).run(
                        &mut s.world,
                        &mut s.participants,
                        machines,
                    );
                    assert_eq!(batch.failed(), 0);
                    std::hint::black_box(batch.ticks)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // The acceptance gate, measured outside criterion's sampling loop
    // (best of 2 per configuration keeps noise down at this batch size).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let serial = run_batch(1).min(run_batch(1));
    let parallel = run_batch(4).min(run_batch(4));
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    println!(
        "parallel_scale: serial {:.0} ms, 4 workers {:.0} ms — {speedup:.2}x speedup \
         ({cores} cores available)",
        serial.as_secs_f64() * 1e3,
        parallel.as_secs_f64() * 1e3,
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "4 workers must be at least 2x faster than serial on the 200-chain/1k-swap \
             batch (got {speedup:.2}x on {cores} cores)"
        );
    } else {
        println!(
            "parallel_scale: < 4 cores available — speedup assertion skipped \
             (threads timeslicing {cores} core(s) cannot show a physical speedup)"
        );
    }
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(2)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_millis(100))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_parallel_scale
}
criterion_main!(benches);
