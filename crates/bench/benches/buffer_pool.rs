//! Criterion bench of the paged block store's buffer pool: pool size ×
//! replacement policy × access pattern.
//!
//! A chain of `CHAIN_BLOCKS` blocks (coinbase + a payment every other
//! block) is built on the paged backend with deliberately small pages, then
//! read back under three access patterns:
//!
//! * **sequential** — a full canonical scan, genesis → tip (the
//!   `replay_state_from_genesis` shape): one cold pass over every page;
//! * **deep_reorg** — repeated backward walks over the 48-block suffix
//!   below the tip (the reorg reindex/replay shape): a working set larger
//!   than the small pools, read in the pathological reverse order;
//! * **hot_tip** — round-robin reads of the last 8 blocks (the fork-mining
//!   / evidence-building shape): a working set that fits any pool.
//!
//! For every configuration the bench records the *deterministic* hit rate
//! of one cold pass (build + pattern replay is a fixed sequence, so hits
//! and misses are machine-independent) and criterion-samples the pattern's
//! wall time. A separate group times per-block accept cost on the memory
//! backend versus paged backends.
//!
//! Results go to `BENCH_buffer_pool.json`. The `ratchet` object holds only
//! the deterministic hit rates — `scripts/compare_bench.py` fails CI when
//! one regresses by more than 15%, which is what pins the replacement
//! policies' quality (an accidental LRU→FIFO regression shows up as a
//! hit-rate drop on `deep_reorg`/`hot_tip`, not as noise).

use ac3_chain::{
    Address, Amount, Blockchain, ChainId, ChainParams, EchoVm, PolicyKind, StoreConfig, TxBuilder,
};
use ac3_crypto::KeyPair;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Chain length: with 512-byte pages this is far larger than every pool.
const CHAIN_BLOCKS: u64 = 300;
/// Small pages so pool pressure is real at bench scale.
const PAGE_SIZE: usize = 512;
/// Pool sweep, in pages: starved, mid, comfortable.
const POOLS: [usize; 3] = [8, 32, 128];
/// Blocks in the deep-reorg working set.
const REORG_DEPTH: usize = 48;
/// Blocks in the hot-tip working set.
const HOT_SET: usize = 8;

const PATTERNS: [&str; 3] = ["sequential", "deep_reorg", "hot_tip"];

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

/// Build the bench chain on the given storage backend.
fn build_chain(config: StoreConfig) -> Blockchain {
    let alice = addr(b"bench-alice");
    let bob = addr(b"bench-bob");
    let miner = addr(b"bench-miner");
    let allocs: [(Address, Amount); 2] = [(alice, 1_000_000), (bob, 1_000)];
    let mut chain = Blockchain::with_store_config(
        ChainId(0),
        ChainParams::test("buffer-pool"),
        Arc::new(EchoVm),
        &allocs,
        config,
    );
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"bench-alice"), 0);
    for i in 0..CHAIN_BLOCKS {
        if i % 2 == 0 {
            if let Some((inputs, outputs)) = chain.plan_payment(&alice, &bob, 5 + i % 20, 1) {
                chain.submit(builder.transfer(inputs, outputs, 1)).unwrap();
            }
        }
        chain.mine_block(miner, 1_000 * (i + 1)).unwrap();
    }
    assert_eq!(chain.height(), CHAIN_BLOCKS);
    chain
}

/// Run one access pattern against the chain's store (read-only).
fn run_pattern(chain: &Blockchain, pattern: &str) {
    let store = chain.store();
    let canonical = store.canonical_hashes();
    match pattern {
        "sequential" => {
            for hash in canonical {
                std::hint::black_box(store.get(hash).expect("canonical block"));
            }
        }
        "deep_reorg" => {
            let start = canonical.len() - REORG_DEPTH;
            for _ in 0..8 {
                for hash in canonical[start..].iter().rev() {
                    std::hint::black_box(store.get(hash).expect("canonical block"));
                }
            }
        }
        "hot_tip" => {
            let start = canonical.len() - HOT_SET;
            for round in 0..100 {
                let hash = &canonical[start + round % HOT_SET];
                std::hint::black_box(store.get(hash).expect("canonical block"));
            }
        }
        other => panic!("unknown pattern {other}"),
    }
}

#[derive(Serialize)]
struct ConfigResult {
    pattern: String,
    policy: &'static str,
    pool_pages: usize,
    hit_rate: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
    cold_pass_us: u64,
}

#[derive(Serialize)]
struct Record {
    experiment: &'static str,
    chain_blocks: u64,
    page_size: usize,
    bytes_stored: u64,
    configs: Vec<ConfigResult>,
    /// Deterministic metrics only (hit rates of fixed access sequences):
    /// safe to ratchet across machines. `compare_bench.py` fails on a
    /// >15% regression of any key.
    ratchet: BTreeMap<String, f64>,
    /// Wall-clock context for humans; never compared by CI.
    timings_informational_us: BTreeMap<String, u64>,
}

fn bench_buffer_pool(c: &mut Criterion) {
    // --- Deterministic sweep: hit rate of one cold pass per config. ---
    let mut configs: Vec<ConfigResult> = Vec::new();
    let mut ratchet = BTreeMap::new();
    let mut timings = BTreeMap::new();
    let mut bytes_stored = 0;
    for pattern in PATTERNS {
        for policy in PolicyKind::all() {
            for pool_pages in POOLS {
                let chain =
                    build_chain(StoreConfig::Paged { pool_pages, page_size: PAGE_SIZE, policy });
                bytes_stored = chain.store_stats().bytes_stored;
                let before = chain.store_stats();
                let t0 = Instant::now();
                run_pattern(&chain, pattern);
                let cold_pass_us = t0.elapsed().as_micros() as u64;
                let after = chain.store_stats();
                let (hits, misses) = (after.hits - before.hits, after.misses - before.misses);
                let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
                let key = format!("hit_rate/{pattern}/{}/{pool_pages}p", policy.name());
                ratchet.insert(key.clone(), hit_rate);
                timings.insert(key, cold_pass_us);
                configs.push(ConfigResult {
                    pattern: pattern.to_string(),
                    policy: policy.name(),
                    pool_pages,
                    hit_rate,
                    hits,
                    misses,
                    evictions: after.evictions - before.evictions,
                    cold_pass_us,
                });
            }
        }
    }
    // Sanity: the chain must dwarf the smallest pool (ISSUE acceptance:
    // ≥ 10× the pool with eviction exercised).
    assert!(
        bytes_stored > 10 * (POOLS[0] * PAGE_SIZE) as u64,
        "bench chain must be ≥ 10× the smallest pool"
    );
    assert!(
        configs.iter().all(|r| r.pool_pages != POOLS[0] || r.evictions > 0),
        "smallest pool must evict under every pattern"
    );

    // --- Criterion timing: pattern × policy at the mid pool size. ---
    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(10);
    for pattern in PATTERNS {
        for policy in PolicyKind::all() {
            let chain = build_chain(StoreConfig::Paged {
                pool_pages: POOLS[1],
                page_size: PAGE_SIZE,
                policy,
            });
            group.bench_function(format!("{pattern}/{}/{}p", policy.name(), POOLS[1]), |b| {
                b.iter(|| run_pattern(&chain, pattern))
            });
        }
    }
    group.finish();

    // --- Per-block accept cost: memory vs paged backends. ---
    let mut accept = c.benchmark_group("accept_cost");
    accept.sample_size(10);
    let backends: Vec<(String, StoreConfig)> =
        std::iter::once(("memory".to_string(), StoreConfig::Memory))
            .chain(PolicyKind::all().into_iter().map(|p| {
                (
                    format!("paged_{}", p.name()),
                    StoreConfig::Paged { pool_pages: POOLS[1], page_size: PAGE_SIZE, policy: p },
                )
            }))
            .collect();
    for (name, config) in &backends {
        let t0 = Instant::now();
        let chain = build_chain(*config);
        let per_block_us = t0.elapsed().as_micros() as u64 / CHAIN_BLOCKS;
        drop(chain);
        timings.insert(format!("accept_per_block/{name}"), per_block_us);
        accept.bench_function(format!("mine_{CHAIN_BLOCKS}_blocks/{name}"), |b| {
            b.iter(|| std::hint::black_box(build_chain(*config)).height())
        });
    }
    accept.finish();

    let record = Record {
        experiment: "buffer_pool",
        chain_blocks: CHAIN_BLOCKS,
        page_size: PAGE_SIZE,
        bytes_stored,
        configs,
        ratchet,
        timings_informational_us: timings,
    };
    let json = serde_json::to_string(&record).expect("record serializes");
    // cargo bench sets the bench binary's cwd to the package root; anchor
    // the report to the workspace root where the committed copy lives.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_buffer_pool.json");
    std::fs::write(out, format!("{json}\n")).expect("BENCH_buffer_pool.json is writable");
    println!("wrote BENCH_buffer_pool.json ({} configs)", record.configs.len());
}

criterion_group!(benches, bench_buffer_pool);
criterion_main!(benches);
