//! Criterion bench backing Table 1 / Section 6.4 and the Section 4.3
//! ablation: per-chain block production at the Table 1 throughput caps, and
//! the relative cost of the three cross-chain validation strategies.

use ac3_chain::{Address, ChainParams, TxBuilder};
use ac3_core::{validate_tx, ValidationStrategy};
use ac3_crypto::KeyPair;
use ac3_sim::World;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

fn bench_block_production(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_block_production");
    group.sample_size(10);
    for params in ChainParams::table1() {
        let name = params.name.clone();
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut p = params.clone();
                    p.block_interval_ms = 10_000; // scaled-down interval, same per-block budget
                    let alice = addr(b"alice");
                    let mut world = World::new();
                    let chain = world.add_chain(p, &[(alice, 10_000_000)]);
                    (world, chain)
                },
                |(mut world, _chain)| {
                    world.advance(60_000);
                    std::hint::black_box(world.now())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_validation_strategies(c: &mut Criterion) {
    // One world, one buried payment; benchmark each Section 4.3 strategy.
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let mut world = World::new();
    let mut params = ChainParams::test("validated");
    params.block_interval_ms = 1_000;
    params.stable_depth = 6;
    let chain = world.add_chain(params, &[(alice, 1_000)]);
    let anchor = world.anchor(chain).unwrap();
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let (inputs, outputs) = world.chain(chain).unwrap().plan_payment(&alice, &bob, 10, 1).unwrap();
    let txid = world.submit(chain, builder.transfer(inputs, outputs, 1)).unwrap();
    world.advance(30_000);

    let mut group = c.benchmark_group("sec43_validation");
    group.sample_size(15);
    for strategy in ValidationStrategy::all() {
        group.bench_function(strategy.to_string(), |b| {
            b.iter(|| {
                let report = validate_tx(&world, strategy, chain, txid, &anchor, 6).unwrap();
                assert!(report.valid);
                std::hint::black_box(report.cost)
            })
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_block_production, bench_validation_strategies
}
criterion_main!(benches);
