//! Criterion micro-benchmarks of the AC2T graph layer: canonical encoding,
//! diameter computation (the quantity Figure 10 sweeps), leader selection
//! for the baselines (single-leader feasibility and the multi-leader
//! feedback vertex set) and the Keccak-256 hash added for Ethereum-style
//! identities.

use ac3_chain::{Address, ChainId};
use ac3_core::graph::{ring_graph, SwapGraph};
use ac3_core::{Herlihy, HerlihyMulti};
use ac3_crypto::{keccak256, sha256, KeyPair};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn participants(n: usize) -> Vec<Address> {
    (0..n).map(|i| Address::from(KeyPair::from_seed(format!("p{i}").as_bytes()).public())).collect()
}

fn ring(n: usize) -> SwapGraph {
    let ps = participants(n);
    let chains: Vec<ChainId> = (0..n as u32).map(ChainId).collect();
    ring_graph(&ps, &chains, 10)
}

fn bench_graph_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    for n in [4usize, 16, 64] {
        let g = ring(n);
        group.bench_function(format!("diameter/ring-{n}"), |b| {
            b.iter(|| std::hint::black_box(g.diameter()))
        });
        group.bench_function(format!("canonical_bytes/ring-{n}"), |b| {
            b.iter(|| std::hint::black_box(g.canonical_bytes()))
        });
        group.bench_function(format!("digest/ring-{n}"), |b| {
            b.iter(|| std::hint::black_box(g.digest()))
        });
    }
    group.finish();
}

fn bench_leader_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_selection");
    for n in [4usize, 16, 64] {
        let g = ring(n);
        group.bench_function(format!("single_leader_feasibility/ring-{n}"), |b| {
            b.iter(|| std::hint::black_box(Herlihy::supports_graph(&g).is_ok()))
        });
        group.bench_function(format!("feedback_vertex_set/ring-{n}"), |b| {
            b.iter(|| std::hint::black_box(g.feedback_vertex_set().len()))
        });
        group.bench_function(format!("multi_leader_feasibility/ring-{n}"), |b| {
            b.iter(|| std::hint::black_box(HerlihyMulti::supports_graph(&g).is_ok()))
        });
    }
    group.finish();
}

fn bench_multisign(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_multisign");
    for n in [2usize, 8, 16] {
        let ps = participants(n);
        let chains: Vec<ChainId> = (0..n as u32).map(ChainId).collect();
        let g = ring_graph(&ps, &chains, 10);
        let keypairs: Vec<KeyPair> =
            (0..n).map(|i| KeyPair::from_seed(format!("p{i}").as_bytes())).collect();
        group.bench_function(format!("ms(D)/{n}-parties"), |b| {
            b.iter(|| std::hint::black_box(g.multisign(&keypairs).unwrap()))
        });
    }
    group.finish();
}

fn bench_keccak(c: &mut Criterion) {
    let mut group = c.benchmark_group("keccak256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| std::hint::black_box(keccak256(std::hint::black_box(&data))))
        });
        group.bench_function(format!("sha256_reference/{size}B"), |b| {
            b.iter(|| std::hint::black_box(sha256(std::hint::black_box(&data))))
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_graph_structure, bench_leader_selection, bench_multisign, bench_keccak
}
criterion_main!(benches);
