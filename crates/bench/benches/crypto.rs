//! Criterion micro-benchmarks of the cryptographic substrate: hashing,
//! signing/verification, Merkle proofs and the graph multisignature.

use ac3_crypto::{GraphMultisig, Hashlock, KeyPair, MerkleTree, Sha256};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::time::Duration;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| {
                let mut h = Sha256::new();
                h.update(std::hint::black_box(&data));
                std::hint::black_box(h.finalize())
            })
        });
    }
    group.finish();
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = KeyPair::from_seed(b"bench");
    let msg = b"transfer X bitcoins from Alice to Bob";
    let sig = kp.sign(msg);
    c.bench_function("schnorr/sign", |b| b.iter(|| std::hint::black_box(kp.sign(msg))));
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| std::hint::black_box(kp.public().verifies(msg, &sig)))
    });
}

fn bench_hashlock(c: &mut Criterion) {
    let lock = Hashlock::from_secret(b"the secret");
    c.bench_function("hashlock/verify", |b| {
        b.iter(|| {
            use ac3_crypto::CommitmentScheme;
            std::hint::black_box(lock.verify(&b"the secret".to_vec()))
        })
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for n in [16usize, 256, 1024] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("tx-{i}").into_bytes()).collect();
        group.bench_function(format!("build/{n}"), |b| {
            b.iter(|| std::hint::black_box(MerkleTree::from_leaves(&leaves)))
        });
        let tree = MerkleTree::from_leaves(&leaves);
        let proof = tree.prove(n / 2).unwrap();
        group.bench_function(format!("verify_proof/{n}"), |b| {
            b.iter(|| std::hint::black_box(proof.verify(&tree.root(), &leaves[n / 2])))
        });
    }
    group.finish();
}

fn bench_multisig(c: &mut Criterion) {
    let keys: Vec<KeyPair> =
        (0..8).map(|i| KeyPair::from_seed(format!("p{i}").as_bytes())).collect();
    let expected: Vec<_> = keys.iter().map(|k| k.public()).collect();
    c.bench_function("multisig/sign_and_verify_8_parties", |b| {
        b.iter_batched(
            || GraphMultisig::new(b"(D, t)".to_vec()),
            |mut ms| {
                for k in &keys {
                    ms.sign_with(k).unwrap();
                }
                std::hint::black_box(ms.verify(&expected).is_ok())
            },
            BatchSize::SmallInput,
        )
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_sha256, bench_schnorr, bench_hashlock, bench_merkle, bench_multisig
}
criterion_main!(benches);
