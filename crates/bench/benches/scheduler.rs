//! Criterion bench of the concurrent swap scheduler's hot path: per-swap
//! wall-clock cost of scheduling a batch of AC2Ts over shared chains. The
//! quantity to watch is the *per-swap* time — it must stay flat as the
//! batch grows (the scheduler's tick loop is O(swaps) per tick and the
//! number of ticks is set by protocol latency, not batch size). The
//! `sec64_contention` binary reports the simulated-time side of the same
//! story.

use ac3_core::scenario::{concurrent_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{Ac3wn, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::SwapId;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

fn machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)))
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for swaps in [1usize, 4, 16] {
        group.bench_function(format!("batch/{swaps}swaps"), |b| {
            b.iter_batched(
                || {
                    concurrent_swaps_scenario(
                        swaps,
                        4.min(swaps.max(2)),
                        &ScenarioConfig::default(),
                    )
                },
                |mut s| {
                    let driver = Ac3wn::new(protocol_cfg());
                    let ms = machines(&s, &driver);
                    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
                    assert_eq!(batch.committed(), swaps, "every swap commits");
                    std::hint::black_box(batch.makespan_ms())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_scheduler
}
criterion_main!(benches);
