//! Criterion micro-benchmarks of the contract runtime: deploying and calling
//! the paper's contract algorithms through the `SwapVm`.

use ac3_chain::{Address, CallContext, ChainId, ContractId, ContractVm, DeployContext};
use ac3_contracts::{
    CentralizedCall, CentralizedSpec, ContractCall, ContractSpec, HtlcCall, HtlcSpec, SwapVm,
};
use ac3_crypto::{Hash256, Hashlock, KeyPair, SignatureLock, WitnessDecision};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

fn deploy_ctx(sender: Address, value: u64) -> DeployContext {
    DeployContext {
        chain: ChainId(0),
        sender,
        value,
        contract: ContractId(Hash256::digest(b"sc")),
        height: 1,
        now: 0,
    }
}

fn call_ctx(sender: Address) -> CallContext {
    CallContext {
        chain: ChainId(0),
        sender,
        contract: ContractId(Hash256::digest(b"sc")),
        height: 2,
        now: 500,
    }
}

fn bench_htlc(c: &mut Criterion) {
    let vm = SwapVm::new();
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let spec = ContractSpec::Htlc(HtlcSpec {
        recipient: bob,
        hashlock: Hashlock::from_secret(b"s").lock,
        timelock: 1_000_000,
    });
    let payload = spec.to_payload();
    c.bench_function("contracts/htlc_deploy", |b| {
        b.iter(|| std::hint::black_box(vm.deploy(&deploy_ctx(alice, 100), &payload).unwrap()))
    });
    let state = vm.deploy(&deploy_ctx(alice, 100), &payload).unwrap();
    let redeem = ContractCall::Htlc(HtlcCall::Redeem { preimage: b"s".to_vec() }).to_payload();
    c.bench_function("contracts/htlc_redeem", |b| {
        b.iter(|| std::hint::black_box(vm.call(&call_ctx(bob), &state, &redeem).unwrap()))
    });
}

fn bench_centralized(c: &mut Criterion) {
    let vm = SwapVm::new();
    let alice = addr(b"alice");
    let trent = KeyPair::from_seed(b"trent");
    let graph = Hash256::digest(b"ms(D)");
    let spec = ContractSpec::Centralized(CentralizedSpec {
        recipient: addr(b"bob"),
        graph_digest: graph,
        witness_key: trent.public(),
    });
    let state = vm.deploy(&deploy_ctx(alice, 100), &spec.to_payload()).unwrap();
    let sig = trent.sign(&SignatureLock::signed_message(&graph, WitnessDecision::Redeem));
    let call = ContractCall::Centralized(CentralizedCall::Redeem { signature: sig }).to_payload();
    c.bench_function("contracts/centralized_redeem", |b| {
        b.iter(|| std::hint::black_box(vm.call(&call_ctx(addr(b"bob")), &state, &call).unwrap()))
    });
}

fn bench_state_tag(c: &mut Criterion) {
    let vm = SwapVm::new();
    let spec = ContractSpec::Htlc(HtlcSpec {
        recipient: addr(b"bob"),
        hashlock: Hashlock::from_secret(b"s").lock,
        timelock: 10,
    });
    let state = vm.deploy(&deploy_ctx(addr(b"alice"), 100), &spec.to_payload()).unwrap();
    c.bench_function("contracts/state_tag_decode", |b| {
        b.iter(|| std::hint::black_box(vm.state_tag(&state)))
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_htlc, bench_centralized, bench_state_tag
}
criterion_main!(benches);
