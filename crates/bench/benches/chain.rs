//! Criterion micro-benchmarks of the blockchain substrate: block mining /
//! validation, UTXO transfers, fork choice and light-client evidence
//! verification.

use ac3_chain::{
    Address, Blockchain, ChainId, ChainParams, ContractId, SealPolicy, TxBuilder, TxOutput,
};
use ac3_contracts::{ChainAnchor, SwapVm};
use ac3_crypto::KeyPair;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn addr(seed: &[u8]) -> Address {
    Address::from(KeyPair::from_seed(seed).public())
}

fn funded_chain(utxos: usize) -> (Blockchain, TxBuilder) {
    let alice = addr(b"alice");
    let mut chain = Blockchain::new(
        ChainId(0),
        ChainParams::test("bench"),
        Arc::new(SwapVm::new()),
        &[(alice, 1_000_000)],
    );
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    // Split into many UTXOs so later transfers do not contend for inputs.
    let (inputs, total) = chain.select_inputs(&alice, 1_000_000).unwrap();
    let per = total / utxos as u64;
    let outputs: Vec<TxOutput> = (0..utxos).map(|_| TxOutput::new(alice, per)).collect();
    chain.submit(builder.transfer(inputs, outputs, 0)).unwrap();
    chain.mine_block(addr(b"miner"), 1_000).unwrap();
    (chain, builder)
}

fn bench_mine_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain/mine_block");
    for txs in [10usize, 100] {
        group.bench_function(format!("{txs}_txs"), |b| {
            b.iter_batched(
                || {
                    let (mut chain, mut builder) = funded_chain(txs + 1);
                    let alice = addr(b"alice");
                    let outs = chain.state().utxos.outputs_of(&alice);
                    for (op, out) in outs.into_iter().take(txs) {
                        let tx =
                            builder.transfer(vec![op], vec![TxOutput::new(alice, out.value)], 0);
                        chain.submit(tx).unwrap();
                    }
                    chain
                },
                |mut chain| std::hint::black_box(chain.mine_block(addr(b"miner"), 2_000).unwrap()),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_pow_sealing(c: &mut Criterion) {
    c.bench_function("chain/pow_seal_12bit", |b| {
        b.iter_batched(
            || {
                let mut params = ChainParams::test("pow");
                params.seal = SealPolicy::ProofOfWork { difficulty_bits: 12 };
                Blockchain::new(
                    ChainId(1),
                    params,
                    Arc::new(SwapVm::new()),
                    &[(addr(b"alice"), 100)],
                )
            },
            |mut chain| std::hint::black_box(chain.mine_block(addr(b"miner"), 1_000).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_evidence(c: &mut Criterion) {
    // Build a chain with a buried transaction and benchmark the
    // self-contained evidence verification (the dominant cost of the
    // in-contract validation strategy).
    let alice = addr(b"alice");
    let bob = addr(b"bob");
    let mut world = ac3_sim::World::new();
    let mut params = ChainParams::test("evidence");
    params.block_interval_ms = 1_000;
    params.stable_depth = 6;
    let chain = world.add_chain(params, &[(alice, 1_000)]);
    let anchor: ChainAnchor = world.anchor(chain).unwrap();
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
    let (inputs, outputs) = world.chain(chain).unwrap().plan_payment(&alice, &bob, 10, 1).unwrap();
    let txid = world.submit(chain, builder.transfer(inputs, outputs, 1)).unwrap();
    world.advance(20_000);
    let evidence = world.tx_evidence_since(chain, &anchor, txid).unwrap();

    c.bench_function("chain/verify_header_evidence_20_blocks", |b| {
        b.iter(|| std::hint::black_box(evidence.verify(&anchor, 6).is_ok()))
    });

    // Contract-state query used by Algorithm 4 style checks.
    let _ = ContractId; // silence unused import on some configurations
}

/// The O(n²) → O(n) regression guard for the incremental state engine:
/// accepting a long run of blocks sequentially. Per-block cost must stay
/// near-constant as the chain grows — under the old replay-from-genesis
/// design the 2000-block case was ~16× the per-block cost of the 500-block
/// case; incrementally it is ~1×.
///
/// Two workloads: `bounded_state` keeps the UTXO set constant-size (each
/// block merges the miner's outputs back into one), isolating pure chain
/// growth — per-block cost here must be flat. The plain variant lets
/// coinbase outputs accumulate, so per-block cost grows with *state* size
/// (the single remaining O(state) clone), but not with chain length.
fn bench_long_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain/long_chain_accept");
    group.sample_size(10);
    for blocks in [500u64, 2000] {
        group.bench_function(format!("{blocks}_blocks"), |b| {
            b.iter(|| {
                let mut chain = Blockchain::new(
                    ChainId(0),
                    ChainParams::test("long"),
                    Arc::new(SwapVm::new()),
                    &[(addr(b"alice"), 1_000_000)],
                );
                let miner = addr(b"miner");
                for i in 0..blocks {
                    chain.mine_block(miner, 1_000 + i).unwrap();
                }
                std::hint::black_box(chain.height())
            })
        });
        group.bench_function(format!("{blocks}_blocks_bounded_state"), |b| {
            b.iter(|| {
                let alice = addr(b"alice");
                let mut chain = Blockchain::new(
                    ChainId(0),
                    ChainParams::test("long-bounded"),
                    Arc::new(SwapVm::new()),
                    &[(alice, 1_000_000)],
                );
                let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
                for i in 0..blocks {
                    // Merge everything alice owns (previous merge output +
                    // previous coinbase) back into a single output, keeping
                    // the UTXO set constant-size as the chain grows.
                    let outs = chain.state().utxos.outputs_of(&alice);
                    let total: u64 = outs.iter().map(|(_, o)| o.value).sum();
                    let inputs = outs.into_iter().map(|(op, _)| op).collect();
                    let tx = builder.transfer(inputs, vec![TxOutput::new(alice, total)], 0);
                    chain.submit(tx).unwrap();
                    chain.mine_block(alice, 1_000 + i).unwrap();
                }
                std::hint::black_box(chain.height())
            })
        });
    }
    group.finish();
}

/// Deep-reorg cost: a 41-block attacker branch forking 40 below the tip of a
/// 200-block chain. Exercises the snapshot-restore + divergent-suffix-replay
/// path of the incremental engine.
fn bench_deep_reorg(c: &mut Criterion) {
    c.bench_function("chain/deep_reorg_40_of_200", |b| {
        b.iter_batched(
            || {
                let mut chain = Blockchain::new(
                    ChainId(0),
                    ChainParams::test("reorg"),
                    Arc::new(SwapVm::new()),
                    &[(addr(b"alice"), 1_000_000)],
                );
                let miner = addr(b"miner");
                for i in 0..200u64 {
                    chain.mine_block(miner, 1_000 + i).unwrap();
                }
                chain
            },
            |mut chain| {
                let attacker = addr(b"attacker");
                let mut parent = chain.store().canonical_block_at_height(160).unwrap();
                for i in 0..41u64 {
                    let block = chain.mine_block_on(parent, attacker, 1_000_000 + i).unwrap();
                    parent = block.hash();
                }
                std::hint::black_box(chain.height())
            },
            BatchSize::SmallInput,
        )
    });
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_mine_block, bench_pow_sealing, bench_evidence, bench_long_chain, bench_deep_reorg
}
criterion_main!(benches);
