//! # ac3-bench
//!
//! The evaluation harness: one binary per table/figure of the paper (run
//! with `cargo run -p ac3-bench --bin <name> --release`) plus Criterion
//! micro-benchmarks of the substrates (`cargo bench -p ac3-bench`).
//!
//! Every binary prints a human-readable table and, after a `--- json ---`
//! separator, one JSON object per row so EXPERIMENTS.md can be regenerated
//! mechanically.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig10_latency` | Figure 10 — swap latency vs graph diameter (model + measured) |
//! | `fig8_9_timeline` | Figures 8 & 9 — per-phase timelines of Herlihy vs AC3WN |
//! | `sec62_cost` | Section 6.2 — monetary cost overhead vs number of contracts |
//! | `sec63_witness_choice` | Section 6.3 — required burial depth vs asset value |
//! | `sec63_attack` | Section 6.3 — the 51% fork attack, executed against the simulator |
//! | `table1_throughput` | Table 1 + Section 6.4 — AC2T throughput bounded by the slowest chain |
//! | `atomicity_failures` | Section 1 / Lemma 5.1 — atomicity under crash faults (E6) |
//! | `fig7_complex_graphs` | Figure 7 / Section 5.3 — cyclic & disconnected graphs (E7) |
//! | `sec52_scalability` | Section 5.2 — concurrent AC2Ts vs number of witness networks (E8) |
//! | `sec64_contention` | Section 6.4 — N concurrent AC2Ts over shared chains; `min(tps)` bound under contention |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::Serialize;

/// Print a row-oriented text table with a title and aligned columns.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Emit one JSON object per row after a `--- json ---` marker.
pub fn print_json_rows<T: Serialize>(experiment: &str, rows: &[T]) {
    println!("\n--- json ---");
    for row in rows {
        let mut value = serde_json::to_value(row).expect("rows serialize");
        if let Some(obj) = value.as_object_mut() {
            obj.insert("experiment".to_string(), serde_json::Value::String(experiment.to_string()));
        }
        println!("{}", serde_json::to_string(&value).expect("rows serialize"));
    }
}

/// Format a float with two decimals (keeps tables tidy).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        a: u64,
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table("t", &["col1", "c2"], &[vec!["1".into(), "long cell".into()]]);
        print_json_rows("unit-test", &[Row { a: 1 }]);
    }

    #[test]
    fn f2_formats_two_decimals() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(4.0), "4.00");
    }
}
