//! Section 6.4 under contention: N concurrent AC2Ts over shared chains.
//!
//! The paper's throughput claim (Table 1 / Section 6.4) is that the
//! aggregate throughput of AC2Ts spanning a fixed set of chains — witnessed
//! by a fixed chain — is bounded by `min(tps)` over every involved chain,
//! *including the witness*. The `table1_throughput` binary cross-checks the
//! per-chain tps caps with a transfer backlog; this binary checks the claim
//! where it actually bites: many AC2Ts in flight at once, scheduled
//! concurrently over shared mempools by the swap scheduler.
//!
//! Two experiments:
//!
//! 1. **Concurrency acceptance** — N swaps over `chains` shared asset
//!    chains plus one shared witness chain, all with generous throughput:
//!    every swap must commit atomically and the batch makespan must sit far
//!    below the serial sum of latencies (the swaps really interleave).
//! 2. **Bottleneck sweep** — the witness chain's tps cap is swept while
//!    every other chain stays generous. Each committed AC2T puts exactly
//!    two transactions on the witness chain (the `SC_w` registration and
//!    the authorize call), so aggregate commitment throughput is bounded by
//!    `witness_tps / 2` swaps per second. The binary asserts the bound
//!    holds for every sweep point (making it a CI-runnable regression check)
//!    and shows throughput rising with the bottleneck's tps until protocol
//!    latency, not block space, dominates.
//!
//! Usage: `sec64_contention [swaps] [asset_chains]` (defaults: 64, 4).

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::ChainParams;
use ac3_core::scenario::{
    concurrent_swaps_over_chains, concurrent_swaps_scenario, MultiSwapScenario, ScenarioConfig,
};
use ac3_core::{Ac3wn, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::SwapId;
use serde::Serialize;

#[derive(Serialize)]
struct ContentionRow {
    witness_tps: u64,
    swaps: usize,
    committed: usize,
    makespan_ms: u64,
    measured_swaps_per_sec: f64,
    bound_swaps_per_sec: f64,
    capped: bool,
}

/// Witness-chain transactions per AC2T: the `SC_w` registration and the
/// authorize call.
const WITNESS_TXS_PER_SWAP: u64 = 2;

fn machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)))
}

fn main() {
    let swaps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let chains: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let driver = Ac3wn::new(ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        // Generous wait caps: under a tps-starved witness chain, submissions
        // queue for many blocks — queueing delay must not be misread as
        // protocol failure.
        wait_cap_deltas: 64,
        ..Default::default()
    });

    // ------------------------------------------------------------------
    // Experiment 1: concurrency acceptance (generous throughput).
    // ------------------------------------------------------------------
    let mut s = concurrent_swaps_scenario(swaps, chains, &ScenarioConfig::default());
    let ms = machines(&s, &driver);
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
    assert_eq!(batch.failed(), 0, "no swap may fail in the acceptance run");
    assert_eq!(batch.committed(), swaps, "every swap must commit in the acceptance run");
    assert!(batch.all_atomic(), "zero atomicity violations required");
    s.world.assert_state_integrity();
    let latency_sum: u64 = batch.reports().map(|(_, r)| r.latency_ms()).sum();
    print_table(
        &format!("{swaps} concurrent AC2Ts over {chains} shared asset chains + 1 witness chain"),
        &["swaps", "committed", "atomic", "makespan (ms)", "serial sum (ms)", "ticks"],
        &[vec![
            swaps.to_string(),
            batch.committed().to_string(),
            batch.all_atomic().to_string(),
            batch.makespan_ms().to_string(),
            latency_sum.to_string(),
            batch.ticks.to_string(),
        ]],
    );

    // ------------------------------------------------------------------
    // Experiment 2: the min(tps) bound, witness chain as the bottleneck.
    // ------------------------------------------------------------------
    let sweep_swaps = swaps.clamp(2, 32);
    let mut rows = Vec::new();
    for witness_tps in [1u64, 2, 4, 8, 1_000] {
        let asset_params: Vec<ChainParams> =
            (0..chains).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params = ChainParams::fast("witness", witness_tps);
        let mut s = concurrent_swaps_over_chains(sweep_swaps, asset_params, witness_params, 1_000);
        let ms = machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
        assert_eq!(
            batch.failed(),
            0,
            "witness_tps={witness_tps}: queueing must delay swaps, not fail them"
        );
        assert!(batch.all_atomic(), "witness_tps={witness_tps}: atomicity violated");
        let measured = batch.commits_per_sec();
        let bound = witness_tps as f64 / WITNESS_TXS_PER_SWAP as f64;
        // The Section 6.4 claim, checked mechanically: aggregate commitment
        // throughput never exceeds min(tps) of the involved chains divided
        // by the per-swap transaction footprint on the bottleneck.
        assert!(
            measured <= bound * 1.000_001,
            "witness_tps={witness_tps}: measured {measured:.3} swaps/s exceeds the \
             min(tps) bound {bound:.3}"
        );
        rows.push(ContentionRow {
            witness_tps,
            swaps: sweep_swaps,
            committed: batch.committed(),
            makespan_ms: batch.makespan_ms(),
            measured_swaps_per_sec: measured,
            bound_swaps_per_sec: bound,
            capped: measured <= bound,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.witness_tps.to_string(),
                r.swaps.to_string(),
                r.committed.to_string(),
                r.makespan_ms.to_string(),
                f2(r.measured_swaps_per_sec),
                f2(r.bound_swaps_per_sec),
                r.capped.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 6.4: aggregate AC2T commit throughput vs the witness-chain tps cap",
        &[
            "witness tps",
            "swaps",
            "committed",
            "makespan (ms)",
            "measured swaps/s",
            "min(tps) bound",
            "capped",
        ],
        &table,
    );
    println!(
        "\nExpected shape: with a tps-starved witness chain the {WITNESS_TXS_PER_SWAP} \
         witness transactions every AC2T needs queue for block space, so aggregate commit \
         throughput tracks witness_tps/{WITNESS_TXS_PER_SWAP}; once the witness cap is \
         generous, protocol latency (not block space) limits throughput — exactly the \
         min(tps) bound of Table 1 / Section 6.4."
    );
    print_json_rows("sec64_contention", &rows);
}
