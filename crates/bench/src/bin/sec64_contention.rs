//! Section 6.4 under contention: N concurrent AC2Ts over shared chains.
//!
//! The paper's throughput claim (Table 1 / Section 6.4) is that the
//! aggregate throughput of AC2Ts spanning a fixed set of chains — witnessed
//! by a fixed chain — is bounded by `min(tps)` over every involved chain,
//! *including the witness*. The `table1_throughput` binary cross-checks the
//! per-chain tps caps with a transfer backlog; this binary checks the claim
//! where it actually bites: many AC2Ts in flight at once, scheduled
//! concurrently over shared mempools by the swap scheduler.
//!
//! Two experiments:
//!
//! 1. **Concurrency acceptance** — N swaps over `chains` shared asset
//!    chains plus one shared witness chain, all with generous throughput:
//!    every swap must commit atomically and the batch makespan must sit far
//!    below the serial sum of latencies (the swaps really interleave).
//! 2. **Bottleneck sweep** — the witness chain's tps cap is swept while
//!    every other chain stays generous. Each committed AC2T puts exactly
//!    two transactions on the witness chain (the `SC_w` registration and
//!    the authorize call), so aggregate commitment throughput is bounded by
//!    `witness_tps / 2` swaps per second. The binary asserts the bound
//!    holds for every sweep point (making it a CI-runnable regression check)
//!    and shows throughput rising with the bottleneck's tps until protocol
//!    latency, not block space, dominates.
//!
//! Four experiments:
//! (numbering below: the third is the fee market, the fourth the dynamic
//! base fee.)
//!
//! 3. **Fee market under contention** — B swaps × k witness chains × fee
//!    policy, with every witness chain tps-starved. Under the escalating
//!    policy, shrinking k concentrates the bidding war: the mean accepted
//!    witness-chain fee rises monotonically as k shrinks from B to 1
//!    (asserted). Under the paper's fixed-fee schedule the same contention
//!    shows up as queueing latency instead (asserted), at exactly the
//!    Section 6.2 prices. The sweep is written to `BENCH_fee_market.json`
//!    so the fee-inflation trajectory is tracked across revisions.
//!
//! 4. **Dynamic base fee under sustained demand** — the miner-side half of
//!    the fee market. (a) A chain under back-to-back full blocks must raise
//!    its EIP-1559-style base fee monotonically, and decay it back to the
//!    floor when demand stops (both asserted block by block). (b) B swaps
//!    contending for one base-fee-priced witness chain, bid under
//!    `FeePolicy::Adaptive` (read the congestion snapshot, pay the observed
//!    price) versus `FeePolicy::Exponential` (blind doubling ladder):
//!    Adaptive must commit with strictly lower mean fee inflation at
//!    equal-or-better mean commit latency (asserted). Recorded in
//!    `BENCH_base_fee.json`.
//!
//! Usage: `sec64_contention [swaps] [asset_chains]` (defaults: 64, 4).

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::{coinbase, BaseFeeSchedule, ChainParams, OutPoint, TxBuilder, TxOutput};
use ac3_core::scenario::{
    concurrent_swaps_multi_witness, concurrent_swaps_over_chains, concurrent_swaps_scenario,
    MultiSwapScenario, ScenarioConfig,
};
use ac3_core::{Ac3wn, FeePolicy, ProtocolConfig, Scheduler, SwapMachine};
use ac3_crypto::KeyPair;
use ac3_sim::{SwapId, World};
use serde::Serialize;

#[derive(Serialize)]
struct ContentionRow {
    witness_tps: u64,
    swaps: usize,
    committed: usize,
    makespan_ms: u64,
    measured_swaps_per_sec: f64,
    bound_swaps_per_sec: f64,
    capped: bool,
}

/// Witness-chain transactions per AC2T: the `SC_w` registration and the
/// authorize call.
const WITNESS_TXS_PER_SWAP: u64 = 2;

fn machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)))
}

fn main() {
    let swaps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let chains: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let driver = Ac3wn::new(ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        // Generous wait caps: under a tps-starved witness chain, submissions
        // queue for many blocks — queueing delay must not be misread as
        // protocol failure.
        wait_cap_deltas: 64,
        ..Default::default()
    });

    // ------------------------------------------------------------------
    // Experiment 1: concurrency acceptance (generous throughput).
    // ------------------------------------------------------------------
    let mut s = concurrent_swaps_scenario(swaps, chains, &ScenarioConfig::default());
    let ms = machines(&s, &driver);
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
    assert_eq!(batch.failed(), 0, "no swap may fail in the acceptance run");
    assert_eq!(batch.committed(), swaps, "every swap must commit in the acceptance run");
    assert!(batch.all_atomic(), "zero atomicity violations required");
    s.world.assert_state_integrity();
    let latency_sum: u64 = batch.reports().map(|(_, r)| r.latency_ms()).sum();
    print_table(
        &format!("{swaps} concurrent AC2Ts over {chains} shared asset chains + 1 witness chain"),
        &["swaps", "committed", "atomic", "makespan (ms)", "serial sum (ms)", "ticks"],
        &[vec![
            swaps.to_string(),
            batch.committed().to_string(),
            batch.all_atomic().to_string(),
            batch.makespan_ms().to_string(),
            latency_sum.to_string(),
            batch.ticks.to_string(),
        ]],
    );

    // ------------------------------------------------------------------
    // Experiment 2: the min(tps) bound, witness chain as the bottleneck.
    // ------------------------------------------------------------------
    let sweep_swaps = swaps.clamp(2, 32);
    let mut rows = Vec::new();
    for witness_tps in [1u64, 2, 4, 8, 1_000] {
        let asset_params: Vec<ChainParams> =
            (0..chains).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params = ChainParams::fast("witness", witness_tps);
        let mut s = concurrent_swaps_over_chains(sweep_swaps, asset_params, witness_params, 1_000);
        let ms = machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
        assert_eq!(
            batch.failed(),
            0,
            "witness_tps={witness_tps}: queueing must delay swaps, not fail them"
        );
        assert!(batch.all_atomic(), "witness_tps={witness_tps}: atomicity violated");
        let measured = batch.commits_per_sec();
        let bound = witness_tps as f64 / WITNESS_TXS_PER_SWAP as f64;
        // The Section 6.4 claim, checked mechanically: aggregate commitment
        // throughput never exceeds min(tps) of the involved chains divided
        // by the per-swap transaction footprint on the bottleneck.
        assert!(
            measured <= bound * 1.000_001,
            "witness_tps={witness_tps}: measured {measured:.3} swaps/s exceeds the \
             min(tps) bound {bound:.3}"
        );
        rows.push(ContentionRow {
            witness_tps,
            swaps: sweep_swaps,
            committed: batch.committed(),
            makespan_ms: batch.makespan_ms(),
            measured_swaps_per_sec: measured,
            bound_swaps_per_sec: bound,
            capped: measured <= bound,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.witness_tps.to_string(),
                r.swaps.to_string(),
                r.committed.to_string(),
                r.makespan_ms.to_string(),
                f2(r.measured_swaps_per_sec),
                f2(r.bound_swaps_per_sec),
                r.capped.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 6.4: aggregate AC2T commit throughput vs the witness-chain tps cap",
        &[
            "witness tps",
            "swaps",
            "committed",
            "makespan (ms)",
            "measured swaps/s",
            "min(tps) bound",
            "capped",
        ],
        &table,
    );
    println!(
        "\nExpected shape: with a tps-starved witness chain the {WITNESS_TXS_PER_SWAP} \
         witness transactions every AC2T needs queue for block space, so aggregate commit \
         throughput tracks witness_tps/{WITNESS_TXS_PER_SWAP}; once the witness cap is \
         generous, protocol latency (not block space) limits throughput — exactly the \
         min(tps) bound of Table 1 / Section 6.4."
    );
    print_json_rows("sec64_contention", &rows);

    // ------------------------------------------------------------------
    // Experiment 3: the fee market — B swaps × k witness chains × policy.
    // ------------------------------------------------------------------
    let fee_rows = fee_market_sweep(swaps, chains);
    let table: Vec<Vec<String>> = fee_rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.witness_chains.to_string(),
                r.swaps.to_string(),
                r.committed.to_string(),
                f2(r.mean_witness_fee),
                f2(r.mean_inflation),
                r.rebids.to_string(),
                r.mean_latency_ms.to_string(),
                r.makespan_ms.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 6.2 under load: accepted witness-chain fees vs congestion (B swaps over k tps-starved witness chains)",
        &[
            "policy",
            "k witnesses",
            "swaps",
            "committed",
            "mean witness fee",
            "fee inflation",
            "rebids",
            "mean latency (ms)",
            "makespan (ms)",
        ],
        &table,
    );
    println!(
        "\nExpected shape: shrinking k concentrates B swaps' witness traffic onto fewer \
         mempools. The escalating policy converts that congestion into a bidding war — the \
         mean accepted fee rises monotonically as k shrinks to 1 — while the fixed-fee \
         schedule pays Section 6.2 prices at every k and absorbs the same congestion as \
         queueing latency instead."
    );
    print_json_rows("sec64_fee_market", &fee_rows);

    let json = serde_json::to_string(&fee_rows).expect("rows serialize");
    std::fs::write("BENCH_fee_market.json", format!("{json}\n"))
        .expect("BENCH_fee_market.json is writable");
    println!("\nFee-market sweep recorded in BENCH_fee_market.json");

    // ------------------------------------------------------------------
    // Experiment 4: the dynamic base fee under sustained demand.
    // ------------------------------------------------------------------
    let trajectory = base_fee_trajectory();
    let table: Vec<Vec<String>> = trajectory
        .iter()
        .map(|p| vec![p.block.to_string(), p.phase.to_string(), p.base_fee.to_string()])
        .collect();
    print_table(
        "Dynamic base fee: sustained full blocks vs idle blocks (4 tx/block budget, target 2)",
        &["block", "phase", "base fee"],
        &table,
    );
    print_json_rows("sec64_base_fee_trajectory", &trajectory);

    let policy_rows = adaptive_vs_exponential();
    let table: Vec<Vec<String>> = policy_rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.swaps.to_string(),
                r.committed.to_string(),
                f2(r.mean_witness_fee),
                f2(r.mean_inflation),
                r.rebids.to_string(),
                r.mean_latency_ms.to_string(),
                r.makespan_ms.to_string(),
            ]
        })
        .collect();
    print_table(
        "Congestion-adaptive vs exponential bidding over a base-fee-priced witness chain",
        &[
            "policy",
            "swaps",
            "committed",
            "mean witness fee",
            "fee inflation",
            "rebids",
            "mean latency (ms)",
            "makespan (ms)",
        ],
        &table,
    );
    println!(
        "\nExpected shape: the base fee tracks sustained block utilisation (up under \
         back-to-back full blocks, back to the floor when demand stops), and the Adaptive \
         policy — which reads the congestion snapshot and pays the observed price plus one — \
         commits the same contended batch at strictly lower mean fee inflation than the \
         Exponential doubling ladder, at equal-or-better commit latency."
    );
    print_json_rows("sec64_adaptive_bidding", &policy_rows);

    let report = BaseFeeReport { trajectory, policies: policy_rows };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write("BENCH_base_fee.json", format!("{json}\n"))
        .expect("BENCH_base_fee.json is writable");
    println!("\nBase-fee sweep recorded in BENCH_base_fee.json");
}

/// One sampled point of the base-fee trajectory (experiment 4a).
#[derive(Serialize)]
struct BaseFeePoint {
    block: u64,
    phase: &'static str,
    base_fee: u64,
}

/// One policy row of the adaptive-vs-exponential comparison (experiment
/// 4b).
#[derive(Serialize)]
struct PolicyRow {
    policy: String,
    swaps: usize,
    committed: usize,
    mean_witness_fee: f64,
    mean_inflation: f64,
    rebids: u64,
    mean_latency_ms: u64,
    makespan_ms: u64,
}

/// The combined experiment-4 record written to `BENCH_base_fee.json`.
#[derive(Serialize)]
struct BaseFeeReport {
    trajectory: Vec<BaseFeePoint>,
    policies: Vec<PolicyRow>,
}

/// Experiment 4a: drive one base-fee chain through a demand phase
/// (back-to-back full blocks) and an idle phase, asserting in-binary that
/// the base fee rises monotonically under sustained utilisation and decays
/// back to the floor when demand stops.
fn base_fee_trajectory() -> Vec<BaseFeePoint> {
    const DEMAND_BLOCKS: u64 = 12;
    const IDLE_BLOCKS: u64 = 24;
    const OUTPUT_VALUE: u64 = 200;

    let schedule = BaseFeeSchedule::eip1559_like();
    let mut params = ChainParams::fast("base-fee", 4); // budget 4, target 2
    params.base_fee_schedule = schedule;
    let mut world = World::new();
    let alice = ac3_chain::Address::from(KeyPair::from_seed(b"base-fee-demand").public());
    let outputs = (DEMAND_BLOCKS as usize) * 4;
    let chain = world.add_chain(params, &vec![(alice, OUTPUT_VALUE); outputs]);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"base-fee-demand"), 0);

    let mut points = Vec::new();
    let base = |world: &World| world.chain(chain).unwrap().base_fee();
    assert_eq!(base(&world), schedule.floor, "the base fee starts at the floor");
    points.push(BaseFeePoint { block: 0, phase: "start", base_fee: base(&world) });

    // Demand: fill every block (4 transfers against a target of 2), each
    // spending its own genesis coinbase so pending demand never conflicts.
    let mut spent = 0u64;
    let mut prev = base(&world);
    for b in 0..DEMAND_BLOCKS {
        for _ in 0..4 {
            let input = OutPoint::new(coinbase(alice, OUTPUT_VALUE, spent).id(), 0);
            spent += 1;
            let fee = world.congestion(chain).unwrap().fee_floor;
            let change = vec![TxOutput::new(alice, OUTPUT_VALUE - fee)];
            world.submit(chain, builder.transfer(vec![input], change, fee)).unwrap();
        }
        world.advance(1_000);
        let now = base(&world);
        assert!(now > prev, "block {b}: a full block must raise the base fee ({prev} -> {now})");
        points.push(BaseFeePoint { block: b + 1, phase: "demand", base_fee: now });
        prev = now;
    }
    assert!(
        prev >= schedule.floor + DEMAND_BLOCKS,
        "sustained demand moved the base fee well off the floor (reached {prev})"
    );

    // Idle: empty blocks decay the fee monotonically back to the floor.
    for b in 0..IDLE_BLOCKS {
        world.advance(1_000);
        let now = base(&world);
        assert!(now <= prev, "idle block {b}: the base fee must not rise ({prev} -> {now})");
        points.push(BaseFeePoint { block: DEMAND_BLOCKS + b + 1, phase: "idle", base_fee: now });
        prev = now;
    }
    assert_eq!(prev, schedule.floor, "demand gone: the base fee decayed back to the floor");
    points
}

/// Experiment 4b: B swaps contending for one base-fee-priced witness
/// chain, under congestion-adaptive vs exponential bidding. Asserts the
/// headline claim: Adaptive commits with strictly lower mean fee inflation
/// at equal-or-better mean commit latency.
fn adaptive_vs_exponential() -> Vec<PolicyRow> {
    // Fixed workload, whatever budgets the sweeps above ran at: enough
    // swaps that witness bids are stuck for several blocks — the regime
    // where the doubling ladder overshoots and the congestion reader pays
    // the observed price — and invariant across invocations, so the
    // committed `BENCH_base_fee.json` tracks the same sweep that CI's
    // tiny-budget paper-repro run regenerates.
    let b = 12;
    let chains = 2;
    let policies = [
        ("exponential", FeePolicy::Exponential { cap: 64 }),
        ("adaptive", FeePolicy::Adaptive { margin: 1, cap: 64 }),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let driver = Ac3wn::new(ProtocolConfig {
            witness_depth: 3,
            deployment_depth: 3,
            wait_cap_deltas: 256,
            fee_policy: policy,
            ..Default::default()
        });
        let asset_params: Vec<ChainParams> =
            (0..chains).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        // The witness chain prices block space dynamically: 2 tx/block
        // budget (target 1), so the B swaps' registrations and authorize
        // calls keep its blocks full and the base fee climbing.
        let witness_params =
            ChainParams::fast("witness", 2).with_base_fee(BaseFeeSchedule::eip1559_like());
        let mut s = concurrent_swaps_over_chains(b, asset_params, witness_params, 10_000);
        let ms = machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
        assert_eq!(batch.failed(), 0, "policy={name}: contention must delay swaps, not fail them");
        assert_eq!(batch.committed(), b, "policy={name}: every swap commits");
        assert!(batch.all_atomic(), "policy={name}: atomicity violated");
        let stats = batch.fee_stats();
        let latencies: Vec<u64> = batch.reports().map(|(_, r)| r.latency_ms()).collect();
        let mean_latency_ms = latencies.iter().sum::<u64>() / latencies.len() as u64;
        rows.push(PolicyRow {
            policy: name.to_string(),
            swaps: b,
            committed: batch.committed(),
            mean_witness_fee: mean_witness_fee(&s),
            mean_inflation: stats.mean_inflation,
            rebids: stats.rebids,
            mean_latency_ms,
            makespan_ms: batch.makespan_ms(),
        });
    }

    let row = |policy: &str| rows.iter().find(|r| r.policy == policy).expect("both policies ran");
    let (exp, ada) = (row("exponential"), row("adaptive"));
    assert!(
        exp.mean_inflation > 1.0,
        "the doubling ladder must actually pay congestion prices (inflation {:.3})",
        exp.mean_inflation
    );
    assert!(
        ada.mean_inflation < exp.mean_inflation,
        "Adaptive must commit at strictly lower mean fee inflation than Exponential \
         ({:.3} vs {:.3})",
        ada.mean_inflation,
        exp.mean_inflation
    );
    assert!(
        ada.mean_latency_ms <= exp.mean_latency_ms,
        "Adaptive must be equal-or-better on commit latency ({} ms vs {} ms)",
        ada.mean_latency_ms,
        exp.mean_latency_ms
    );
    rows
}

#[derive(Serialize)]
struct FeeMarketRow {
    policy: String,
    witness_chains: usize,
    swaps: usize,
    committed: usize,
    mean_witness_fee: f64,
    mean_inflation: f64,
    rebids: u64,
    mean_latency_ms: u64,
    makespan_ms: u64,
}

/// Mean accepted fee per witness-chain transaction (the ledger refunds
/// evicted bids and reprices replacements, so this is what the mined
/// transactions actually paid).
fn mean_witness_fee(s: &MultiSwapScenario) -> f64 {
    let fees: u64 = s.witness_chains.iter().map(|w| s.world.fees.fees_on(*w)).sum();
    let ops: u64 = s
        .witness_chains
        .iter()
        .map(|w| s.world.fees.deployments_on(*w) + s.world.fees.calls_on(*w))
        .sum();
    if ops == 0 {
        return 0.0;
    }
    fees as f64 / ops as f64
}

/// Run the B × k × policy sweep and assert the Section 6.2-under-load
/// shape: escalating fees rise monotonically as k shrinks; fixed fees stay
/// at schedule prices while latency grows instead.
fn fee_market_sweep(swaps: usize, chains: usize) -> Vec<FeeMarketRow> {
    let b = swaps.clamp(4, 16);
    // k halves from B down to 1: every witness chain serves B/k swaps.
    let mut ks = Vec::new();
    let mut k = b;
    while k >= 1 {
        ks.push(k);
        if k == 1 {
            break;
        }
        k /= 2;
    }

    let policies =
        [("fixed", FeePolicy::Fixed), ("exponential", FeePolicy::Exponential { cap: 64 })];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let driver = Ac3wn::new(ProtocolConfig {
            witness_depth: 3,
            deployment_depth: 3,
            // Queueing on a 1-tps witness chain runs many blocks deep.
            wait_cap_deltas: 256,
            fee_policy: policy,
            ..Default::default()
        });
        for &k in &ks {
            let asset_params: Vec<ChainParams> =
                (0..chains).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
            // Every witness chain is the paper's worst case: 1 tps.
            let witness_params: Vec<ChainParams> =
                (0..k).map(|i| ChainParams::fast(&format!("witness-{i}"), 1)).collect();
            let mut s = concurrent_swaps_multi_witness(b, asset_params, witness_params, 10_000);
            let ms = machines(&s, &driver);
            let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);
            assert_eq!(
                batch.failed(),
                0,
                "policy={name} k={k}: contention must delay swaps, not fail them"
            );
            assert_eq!(batch.committed(), b, "policy={name} k={k}: every swap commits");
            assert!(batch.all_atomic(), "policy={name} k={k}: atomicity violated");
            let stats = batch.fee_stats();
            let latencies: Vec<u64> = batch.reports().map(|(_, r)| r.latency_ms()).collect();
            let mean_latency_ms = latencies.iter().sum::<u64>() / latencies.len() as u64;
            rows.push(FeeMarketRow {
                policy: name.to_string(),
                witness_chains: k,
                swaps: b,
                committed: batch.committed(),
                mean_witness_fee: mean_witness_fee(&s),
                mean_inflation: stats.mean_inflation,
                rebids: stats.rebids,
                mean_latency_ms,
                makespan_ms: batch.makespan_ms(),
            });
        }
    }

    // The acceptance shape, checked mechanically so CI catches a rotted
    // fee market.
    let fee_of = |policy: &str, k: usize| {
        rows.iter()
            .find(|r| r.policy == policy && r.witness_chains == k)
            .map(|r| r.mean_witness_fee)
            .expect("sweep point exists")
    };
    for pair in ks.windows(2) {
        let (wide, narrow) = (pair[0], pair[1]);
        assert!(
            fee_of("exponential", narrow) >= fee_of("exponential", wide) - 1e-9,
            "escalating mean fee must rise monotonically as k shrinks: \
             k={narrow} pays {:.2} < k={wide} pays {:.2}",
            fee_of("exponential", narrow),
            fee_of("exponential", wide),
        );
        assert!(
            (fee_of("fixed", narrow) - fee_of("fixed", wide)).abs() < 1e-9,
            "fixed-fee schedule must not move with congestion"
        );
    }
    assert!(
        fee_of("exponential", 1) > fee_of("exponential", b),
        "the bidding war on one shared witness chain must inflate fees \
         ({:.2} at k=1 vs {:.2} at k={b})",
        fee_of("exponential", 1),
        fee_of("exponential", b),
    );
    let latency_of = |policy: &str, k: usize| {
        rows.iter()
            .find(|r| r.policy == policy && r.witness_chains == k)
            .map(|r| r.mean_latency_ms)
            .expect("sweep point exists")
    };
    assert!(
        latency_of("fixed", 1) > latency_of("fixed", b),
        "under fixed fees the same congestion must surface as queueing latency \
         ({} ms at k=1 vs {} ms at k={b})",
        latency_of("fixed", 1),
        latency_of("fixed", b),
    );
    rows
}
