//! Network experiment: the message-level client→chain layer swept over
//! latency × loss profiles.
//!
//! Every profile runs the same seeded clustered mixed-protocol batch
//! (AC3WN / AC3TW / Herlihy / Herlihy-multi, swap `i` under protocol
//! `i mod 4`) with every submission, replace-by-fee and congestion probe
//! routed through per-chain links ([`ac3_sim::NetworkProfile`]). The sweep
//! measures what the network layer costs the protocols: makespan
//! stretches with latency, commits convert to aborts as drops eat
//! deployments, and fees rise as machines re-bid transactions the network
//! lost — while atomicity holds in every cell.
//!
//! The binary asserts, in-process:
//!
//! 1. **Equivalence** — the zero-latency / zero-loss profile produces
//!    exactly the outcomes of the direct (no network) run: the
//!    [`ac3_sim::NetworkedApi`] applies zero-delay sends inline, so the
//!    instruction streams are identical.
//! 2. **Determinism** — the harshest cell replayed at 1, 2 and 4
//!    scheduler workers produces bitwise-identical outcomes and delivery
//!    counters: link RNG state shards with its chain, so a lossy run is
//!    reproducible at any worker count.
//! 3. **Atomicity** — no profile, however harsh, makes a swap fail the
//!    atomicity audit; loss delays or aborts swaps, it never splits them.
//!
//! The sweep is written to `BENCH_network.json`; its `ratchet` object
//! carries only deterministic counters (message delivery/drop totals per
//! profile and the determinism agreement count), so CI compares it at
//! zero drift (`_count` keys are exact-match in
//! `scripts/compare_bench.py`).
//!
//! Usage: `network_sweep [clusters] [swaps_per_cluster] [seed]`
//! (defaults: 4 clusters × 4 swaps, seed [`SEED`] — CI runs `3 4`).

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_core::scenario::{clustered_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{Ac3tw, Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::{NetworkProfile, SwapId};
use serde::Serialize;

/// Sweep seed: fixed so the committed `BENCH_network.json` is reproducible
/// on any machine (the network layer is pure seeded simulation).
const SEED: u64 = 0xAC3_0006;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

/// The mixed-protocol machine mix: swap `i` runs under protocol `i mod 4`.
fn mixed_machines(s: &MultiSwapScenario) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    s.swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

/// One cell of the sweep: a named network profile (`None` = direct API).
struct Cell {
    name: &'static str,
    profile: Option<NetworkProfile>,
}

fn cells(seed: u64) -> Vec<Cell> {
    let p = |latency_min_ms, latency_max_ms, drop_per_mille| NetworkProfile {
        seed,
        latency_min_ms,
        latency_max_ms,
        drop_per_mille,
    };
    vec![
        Cell { name: "direct", profile: None },
        Cell { name: "zero", profile: Some(NetworkProfile::zero(seed)) },
        Cell { name: "lan", profile: Some(p(1, 20, 0)) },
        Cell { name: "wan", profile: Some(p(20, 250, 5)) },
        Cell { name: "lossy", profile: Some(p(20, 400, 40)) },
        Cell { name: "harsh", profile: Some(p(50, 900, 100)) },
    ]
}

/// Everything one run observably produced, for the in-process asserts.
struct RunResult {
    outcomes: String,
    committed: usize,
    aborted: usize,
    makespan_ms: u64,
    ticks: u64,
    fees_paid: u64,
    stats: ac3_sim::LinkStats,
}

fn run(
    clusters: usize,
    per_cluster: usize,
    profile: Option<NetworkProfile>,
    workers: usize,
) -> RunResult {
    let mut s = clustered_swaps_scenario(clusters, per_cluster, 2, &ScenarioConfig::default());
    let machines = mixed_machines(&s);
    let mut scheduler = Scheduler::default().with_workers(workers);
    if let Some(profile) = profile {
        scheduler = scheduler.with_network(profile);
    }
    let batch = scheduler.run(&mut s.world, &mut s.participants, machines);
    assert_eq!(batch.failed(), 0, "no swap may error under any network profile");
    assert!(batch.all_atomic(), "atomicity audit failed under a network profile");
    s.world.assert_state_integrity();
    let outcomes: Vec<(u64, String)> = batch
        .outcomes
        .iter()
        .map(|o| (o.id.0, serde_json::to_string(o.result.as_ref().unwrap()).unwrap()))
        .collect();
    RunResult {
        outcomes: serde_json::to_string(&outcomes).unwrap(),
        committed: batch.committed(),
        aborted: batch.outcomes.len() - batch.committed(),
        makespan_ms: batch.makespan_ms(),
        ticks: batch.ticks,
        fees_paid: s.world.fees.total_fees(),
        stats: s.world.network_stats(),
    }
}

#[derive(Serialize)]
struct CellRow {
    profile: String,
    latency_ms: String,
    drop_per_mille: u32,
    committed: usize,
    aborted: usize,
    makespan_ms: u64,
    ticks: u64,
    fees_paid: u64,
    submits: u64,
    replaces: u64,
    probes: u64,
    delivered: u64,
    dropped: u64,
    nacked: u64,
}

#[derive(Serialize)]
struct NetworkRecord {
    experiment: &'static str,
    seed: u64,
    clusters: usize,
    swaps_per_cluster: usize,
    cells: Vec<CellRow>,
    determinism_workers: Vec<usize>,
    ratchet: Vec<(String, f64)>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clusters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let per_cluster: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(SEED);

    let swaps = clusters * per_cluster;
    println!(
        "Network sweep: {swaps} mixed-protocol swaps ({clusters} clusters × {per_cluster}) per \
         profile (seed {seed:#x})"
    );

    let mut rows: Vec<CellRow> = Vec::new();
    let mut direct_outcomes = String::new();
    for cell in &cells(seed) {
        let r = run(clusters, per_cluster, cell.profile, 1);
        match cell.name {
            // Bench assert 1: zero profile ≡ direct, outcome for outcome.
            "direct" => direct_outcomes = r.outcomes.clone(),
            "zero" => assert_eq!(
                r.outcomes, direct_outcomes,
                "zero-profile networked outcomes diverged from the direct API"
            ),
            _ => {}
        }
        let (lat_min, lat_max, drop) = cell
            .profile
            .map(|p| (p.latency_min_ms, p.latency_max_ms, p.drop_per_mille))
            .unwrap_or((0, 0, 0));
        rows.push(CellRow {
            profile: cell.name.to_string(),
            latency_ms: format!("{lat_min}-{lat_max}"),
            drop_per_mille: drop,
            committed: r.committed,
            aborted: r.aborted,
            makespan_ms: r.makespan_ms,
            ticks: r.ticks,
            fees_paid: r.fees_paid,
            submits: r.stats.submits,
            replaces: r.stats.replaces,
            probes: r.stats.probes,
            delivered: r.stats.delivered,
            dropped: r.stats.dropped,
            nacked: r.stats.nacked,
        });
    }

    // Bench assert 2: the harshest cell is bitwise-reproducible at any
    // worker count, delivery counters included.
    let determinism_workers = vec![1usize, 2, 4];
    let harsh = cells(seed).pop().expect("cells non-empty");
    let reference = run(clusters, per_cluster, harsh.profile, determinism_workers[0]);
    for &workers in &determinism_workers[1..] {
        let replay = run(clusters, per_cluster, harsh.profile, workers);
        assert_eq!(
            replay.outcomes, reference.outcomes,
            "lossy outcomes diverged at {workers} workers"
        );
        assert_eq!(
            replay.stats, reference.stats,
            "delivery counters diverged at {workers} workers"
        );
    }

    print_table(
        "Network sweep: batch outcome per latency/loss profile",
        &[
            "profile",
            "latency ms",
            "drop ‰",
            "committed",
            "aborted",
            "makespan ms",
            "fees",
            "submits",
            "delivered",
            "dropped",
            "nacked",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.profile.clone(),
                    r.latency_ms.clone(),
                    r.drop_per_mille.to_string(),
                    r.committed.to_string(),
                    r.aborted.to_string(),
                    r.makespan_ms.to_string(),
                    r.fees_paid.to_string(),
                    r.submits.to_string(),
                    r.delivered.to_string(),
                    r.dropped.to_string(),
                    r.nacked.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Ratchet: deterministic counters only — the whole sweep is seeded
    // simulation, so delivery totals are machine-independent. `_count`
    // keys are compared exactly by `scripts/compare_bench.py`.
    let total = |f: &dyn Fn(&CellRow) -> u64| rows.iter().map(f).sum::<u64>() as f64;
    let mut ratchet: Vec<(String, f64)> = vec![
        ("atomicity_rate".to_string(), 1.0),
        ("committed_count".to_string(), total(&|r| r.committed as u64)),
        ("delivered_count".to_string(), total(&|r| r.delivered)),
        ("dropped_count".to_string(), total(&|r| r.dropped)),
        ("nacked_count".to_string(), total(&|r| r.nacked)),
        ("rebid_submits_count".to_string(), total(&|r| r.replaces)),
        ("determinism_agreement_count".to_string(), determinism_workers.len() as f64),
    ];
    for r in &rows {
        ratchet.push((format!("{}/delivered_count", r.profile), r.delivered as f64));
        ratchet.push((format!("{}/dropped_count", r.profile), r.dropped as f64));
    }

    let record = NetworkRecord {
        experiment: "network_sweep",
        seed,
        clusters,
        swaps_per_cluster: per_cluster,
        cells: rows,
        determinism_workers,
        ratchet,
    };
    let json = serde_json::to_string(&record).expect("record serializes");
    std::fs::write("BENCH_network.json", format!("{json}\n"))
        .expect("BENCH_network.json is writable");
    println!("\nNetwork sweep recorded in BENCH_network.json");
    print_json_rows("network_sweep", &record.cells);
    let harsh_row = record.cells.last().expect("cells non-empty");
    println!(
        "harsh profile: {} of {} swaps committed, {} messages dropped, makespan {} ms ({}× direct)",
        harsh_row.committed,
        swaps,
        harsh_row.dropped,
        harsh_row.makespan_ms,
        f2(harsh_row.makespan_ms as f64 / record.cells[0].makespan_ms.max(1) as f64),
    );
}
