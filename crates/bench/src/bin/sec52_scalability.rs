//! Experiment E8 (Section 5.2): witness-network scalability.
//!
//! The paper argues that coordinating AC2Ts is embarrassingly parallel:
//! different AC2Ts can be coordinated by different witness networks, so the
//! witness layer never becomes a bottleneck — overall throughput is bounded
//! only by the asset chains. We run B independent two-party swaps and
//! compare the end-to-end makespan when all of them share a single
//! tps-constrained witness chain versus when they are spread over k witness
//! chains.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::{Address, Amount, ChainParams};
use ac3_core::graph::SwapGraph;
use ac3_core::scenario::Scenario;
use ac3_core::{Ac3wn, ProtocolConfig};
use ac3_sim::{ParticipantSet, World};
use serde::Serialize;

#[derive(Serialize)]
struct ScalabilityRow {
    swaps: usize,
    witness_networks: usize,
    makespan_deltas: f64,
    all_atomic: bool,
}

/// Build one scenario per swap, where swap `i` uses its own pair of asset
/// chains but shares one of `witnesses` witness chains (round-robin). Every
/// scenario gets its own world; the shared witness chain is modelled by
/// giving shared-witness swaps a witness chain throttled to `1/shared`
/// of the base throughput — the serialization penalty a single coordinator
/// imposes when its capacity is split across concurrent AC2Ts.
fn run_batch(swaps: usize, witnesses: usize) -> (f64, bool) {
    let mut worst_latency: f64 = 0.0;
    let mut all_atomic = true;
    let sharing_factor = (swaps as u64).div_ceil(witnesses as u64).max(1);

    for i in 0..swaps {
        let mut world = World::new();
        let mut participants = ParticipantSet::new();
        let alice = participants.add(&format!("alice-{i}"));
        let bob = participants.add(&format!("bob-{i}"));
        let genesis: Vec<(Address, Amount)> = vec![(alice, 1_000), (bob, 1_000)];

        let mut asset = ChainParams::test("asset");
        asset.block_interval_ms = 1_000;
        asset.stable_depth = 3;
        let chain_a = world.add_chain(asset.clone(), &genesis);
        let chain_b = world.add_chain(asset, &genesis);

        // The shared witness chain has to serialise the coordination work of
        // `sharing_factor` swaps: model it as a proportionally slower chain.
        let mut witness = ChainParams::test("witness");
        witness.block_interval_ms = 1_000 * sharing_factor;
        witness.stable_depth = 3;
        let witness_chain = world.add_chain(witness, &genesis);

        let graph = SwapGraph::new(
            vec![
                ac3_core::SwapEdge { from: alice, to: bob, amount: 50, chain: chain_a },
                ac3_core::SwapEdge { from: bob, to: alice, amount: 80, chain: chain_b },
            ],
            i as u64 + 1,
        )
        .expect("valid graph");

        let mut scenario = Scenario {
            world,
            participants,
            graph,
            witness_chain,
            asset_chains: vec![chain_a, chain_b],
        };
        let delta_of_assets = 4_000.0; // Δ of the asset chains alone
        let report = Ac3wn::new(ProtocolConfig {
            witness_depth: 3,
            deployment_depth: 3,
            ..Default::default()
        })
        .execute(&mut scenario)
        .expect("swap");
        all_atomic &= report.is_atomic();
        worst_latency = worst_latency.max(report.latency_ms() as f64 / delta_of_assets);
    }
    (worst_latency, all_atomic)
}

fn main() {
    let swaps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mut rows = Vec::new();
    for witnesses in [1usize, 2, 4, swaps] {
        let (makespan, all_atomic) = run_batch(swaps, witnesses.min(swaps));
        rows.push(ScalabilityRow {
            swaps,
            witness_networks: witnesses.min(swaps),
            makespan_deltas: makespan,
            all_atomic,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.swaps.to_string(),
                r.witness_networks.to_string(),
                f2(r.makespan_deltas),
                r.all_atomic.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 5.2: coordinating B concurrent AC2Ts with k witness networks",
        &["swaps B", "witness networks k", "worst swap latency (asset Δ)", "all atomic"],
        &table,
    );
    println!(
        "\nExpected shape: with one shared witness network the coordination work serialises and \
         per-swap latency grows; spreading AC2Ts across witness networks (k → B) restores the \
         constant ~4Δ latency — the witness layer is never the bottleneck."
    );
    print_json_rows("sec52_scalability", &rows);
}
