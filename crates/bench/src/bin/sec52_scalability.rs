//! Experiment E8 (Section 5.2): witness-network scalability.
//!
//! The paper argues that coordinating AC2Ts is embarrassingly parallel:
//! different AC2Ts can be coordinated by different witness networks, so the
//! witness layer never becomes a bottleneck — overall throughput is bounded
//! only by the asset chains. We run B concurrent two-party swaps through
//! the swap scheduler over one shared world containing k **real** witness
//! chains (each tps-constrained, each a genuine chain with its own mempool
//! and block production) and sweep k from 1 to B.
//!
//! With k = 1 every swap's registration and authorization transactions
//! queue in the single witness mempool, so coordination serialises and
//! per-swap latency inflates; as k grows toward B the per-witness load
//! drops to a handful of transactions and latency returns to the constant
//! ~4Δ the paper reports. Unlike the earlier version of this binary —
//! which approximated sharing by throttling a private witness chain's
//! block interval — the serialisation penalty here is *measured* from
//! actual block-space contention between concurrently scheduled machines,
//! not modelled.
//!
//! Usage: `sec52_scalability [swaps]` (default: 8).

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::ChainParams;
use ac3_core::scenario::concurrent_swaps_multi_witness;
use ac3_core::{Ac3wn, ProtocolConfig, Scheduler, SwapMachine};
use ac3_sim::SwapId;
use serde::Serialize;

#[derive(Serialize)]
struct ScalabilityRow {
    swaps: usize,
    witness_networks: usize,
    worst_latency_deltas: f64,
    makespan_deltas: f64,
    all_atomic: bool,
}

/// Run B swaps over k real shared witness chains and report the worst
/// per-swap latency and the batch makespan, both in asset-chain Δ.
fn run_batch(swaps: usize, witnesses: usize) -> ScalabilityRow {
    // Generous asset chains: the witness layer must be the only contended
    // resource, exactly the Section 5.2 question.
    let asset_params: Vec<ChainParams> =
        (0..swaps.min(4)).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
    // Each committed AC2T puts two transactions on its witness chain (the
    // SC_w registration and the authorize call); 1 tps per witness chain
    // makes sharing one chain among many swaps visibly serialise.
    let witness_params: Vec<ChainParams> =
        (0..witnesses).map(|i| ChainParams::fast(&format!("witness-{i}"), 1)).collect();
    let mut s = concurrent_swaps_multi_witness(swaps, asset_params, witness_params, 1_000);

    let driver = Ac3wn::new(ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        // Queueing on a starved witness chain must read as delay, not
        // failure.
        wait_cap_deltas: 64,
        ..Default::default()
    });
    let machines: Vec<(SwapId, Box<dyn SwapMachine>)> =
        s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)));
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);

    assert_eq!(
        batch.failed(),
        0,
        "k={witnesses}: witness queueing must delay swaps, not fail them"
    );
    assert_eq!(batch.committed(), swaps, "k={witnesses}: every swap must commit");
    s.world.assert_state_integrity();

    let delta_of_assets = 4_000.0; // Δ of the asset chains alone
    let worst_latency = batch
        .reports()
        .map(|(_, r)| r.latency_ms() as f64 / delta_of_assets)
        .fold(0.0f64, f64::max);
    ScalabilityRow {
        swaps,
        witness_networks: witnesses,
        worst_latency_deltas: worst_latency,
        makespan_deltas: batch.makespan_ms() as f64 / delta_of_assets,
        all_atomic: batch.all_atomic(),
    }
}

fn main() {
    let swaps: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let mut rows = Vec::new();
    for witnesses in [1usize, 2, 4, swaps] {
        let witnesses = witnesses.min(swaps);
        if rows.iter().any(|r: &ScalabilityRow| r.witness_networks == witnesses) {
            continue;
        }
        rows.push(run_batch(swaps, witnesses));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.swaps.to_string(),
                r.witness_networks.to_string(),
                f2(r.worst_latency_deltas),
                f2(r.makespan_deltas),
                r.all_atomic.to_string(),
            ]
        })
        .collect();
    print_table(
        "Section 5.2: B concurrent AC2Ts scheduled over k real shared witness chains",
        &[
            "swaps B",
            "witness networks k",
            "worst swap latency (asset Δ)",
            "makespan (asset Δ)",
            "all atomic",
        ],
        &table,
    );

    // The paper's claim, asserted mechanically: witness-layer sharing is
    // the bottleneck at k = 1 and vanishes at k = B.
    let shared = rows.first().expect("k=1 row exists");
    let private = rows.last().expect("k=B row exists");
    assert!(
        shared.witness_networks == 1 && private.witness_networks == swaps,
        "sweep must include k=1 and k=B"
    );
    if swaps > 2 {
        assert!(
            shared.worst_latency_deltas > private.worst_latency_deltas,
            "a single shared witness network ({}Δ) must be slower than one per swap ({}Δ)",
            shared.worst_latency_deltas,
            private.worst_latency_deltas
        );
    }

    println!(
        "\nExpected shape: with one shared witness network the B swaps' registration and \
         authorization transactions queue in the same mempool and per-swap latency grows; \
         spreading AC2Ts across witness networks (k → B) restores the constant ~4Δ latency — \
         the witness layer is never the bottleneck. The contention is measured by the swap \
         scheduler over real shared chains, not modelled by throttling."
    );
    print_json_rows("sec52_scalability", &rows);
}
