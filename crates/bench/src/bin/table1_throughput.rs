//! Table 1 and Section 6.4: AC2T throughput.
//!
//! The analytical claim: the throughput of AC2Ts spanning a fixed set of
//! chains, witnessed by a fixed chain, is `min(tps)` over all involved
//! chains including the witness. We print Table 1 itself, the paper's
//! worked example (Ethereum + Litecoin witnessed by Bitcoin = 7 tps), and a
//! measured cross-check: tps-capped simulated chains processing a backlog
//! of transfer transactions, confirming each chain sustains its Table 1
//! rate and the combination is bounded by the slowest member.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::{Address, ChainParams, TxBuilder, TxOutput};
use ac3_core::analysis::throughput;
use ac3_crypto::KeyPair;
use ac3_sim::World;
use serde::Serialize;

#[derive(Serialize)]
struct ThroughputRow {
    chains: String,
    witness: String,
    model_tps: u64,
    measured_bottleneck_tps: f64,
}

/// Measure the sustained transaction throughput of one simulated chain by
/// flooding it with simple transfers for `seconds` of simulated time.
fn measured_tps(params: ChainParams, seconds: u64) -> f64 {
    let alice = Address::from(KeyPair::from_seed(b"alice").public());
    let mut world = World::new();
    // Fund alice generously so input selection never runs dry.
    let chain = world.add_chain(params, &[(alice, 1_000_000_000)]);
    let mut builder = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

    // Submit a large backlog of self-payments (keeps the mempool saturated).
    let backlog = 4_000u64;
    let per_tx = 10u64;
    let mut outpoints = Vec::new();
    {
        let c = world.chain(chain).unwrap();
        let outs = c.state().utxos.outputs_of(&alice);
        outpoints.extend(outs.into_iter().map(|(op, _)| op));
    }
    // Split the single genesis output into many spendable outputs first.
    let split_outputs: Vec<TxOutput> = (0..backlog).map(|_| TxOutput::new(alice, per_tx)).collect();
    let split = builder.transfer(outpoints, split_outputs, 0);
    world.submit(chain, split).unwrap();
    world.advance(world.chain(chain).unwrap().params().block_interval_ms);

    // Now one self-transfer per UTXO.
    let outs = world.chain(chain).unwrap().state().utxos.outputs_of(&alice);
    for (op, out) in outs.into_iter().take(backlog as usize) {
        let tx = builder.transfer(vec![op], vec![TxOutput::new(alice, out.value)], 0);
        let _ = world.submit(chain, tx);
    }

    let start_height = world.chain(chain).unwrap().height();
    let start_time = world.now();
    world.advance(seconds * 1_000);
    let c = world.chain(chain).unwrap();
    // Count non-coinbase transactions mined after start_height.
    let mined: u64 = c
        .store()
        .canonical_blocks()
        .filter(|b| b.header.height > start_height)
        .map(|b| b.transactions.iter().filter(|t| !t.is_coinbase()).count() as u64)
        .sum();
    mined as f64 / ((world.now() - start_time) as f64 / 1000.0)
}

fn main() {
    // Table 1 itself.
    let t1 = throughput::table1();
    let table1_rows: Vec<Vec<String>> =
        t1.iter().map(|c| vec![c.name.to_string(), c.tps.to_string()]).collect();
    print_table(
        "Table 1: throughput of the top-4 permissionless cryptocurrencies",
        &["Blockchain", "tps"],
        &table1_rows,
    );

    // Measured per-chain throughput of the simulated equivalents.
    // Scale the simulation: use 10-second blocks (rather than full 10-minute
    // Bitcoin blocks) while keeping each chain's Table 1 tps cap, so the
    // measurement completes quickly; the per-block budget is what matters.
    // 60 s × 61 tps ≈ 3.7k transactions — comfortably inside the 4k backlog,
    // so the measurement is capped by the chain's tps budget, not the
    // workload.
    let sim_seconds = 60;
    let mut measured_rows = Vec::new();
    for base in ChainParams::table1() {
        let mut p = base.clone();
        p.block_interval_ms = 10_000;
        let measured = measured_tps(p, sim_seconds);
        measured_rows.push(vec![base.name.clone(), base.tps.to_string(), f2(measured)]);
    }
    print_table(
        "Measured sustained tps of the simulated chains (tps-capped blocks)",
        &["Chain", "Table 1 tps", "measured tps"],
        &measured_rows,
    );

    // Section 6.4 combinations.
    let combos: Vec<(&str, Vec<u64>, &str, u64)> = vec![
        ("Ethereum + Litecoin", vec![25, 56], "Bitcoin", 7),
        ("Ethereum + Litecoin", vec![25, 56], "Ethereum", 25),
        ("Bitcoin + Ethereum", vec![7, 25], "Bitcoin", 7),
        ("Litecoin + Bitcoin Cash", vec![56, 61], "Litecoin", 56),
        ("All four", vec![7, 25, 56, 61], "Bitcoin Cash", 61),
    ];
    let mut rows = Vec::new();
    for (chains, tps, witness, witness_tps) in combos {
        let model = throughput::ac2t_throughput(&tps, witness_tps);
        rows.push(ThroughputRow {
            chains: chains.to_string(),
            witness: witness.to_string(),
            model_tps: model,
            measured_bottleneck_tps: *tps.iter().chain(std::iter::once(&witness_tps)).min().unwrap()
                as f64,
        });
    }
    let combo_table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.chains.clone(), r.witness.clone(), r.model_tps.to_string()])
        .collect();
    print_table(
        "Section 6.4: AC2T throughput = min(tps) over involved chains + witness",
        &["asset chains", "witness", "AC2T tps"],
        &combo_table,
    );
    let (btc, eth) = throughput::section64_example();
    println!(
        "\nPaper's example: Ethereum+Litecoin witnessed by Bitcoin ⇒ {btc} tps; choosing the witness \
         among the involved chains (Ethereum) lifts it to {eth} tps."
    );
    print_json_rows("table1_throughput", &rows);
}
