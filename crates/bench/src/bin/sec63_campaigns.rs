//! Experiment E10 (Section 6.3 extended): adversarial campaigns — Byzantine
//! witnesses plus economic griefing — swept over adversary budget × defense
//! posture, measuring what an attack costs versus what the defense costs.
//!
//! Each cell of the sweep runs one seeded [`ac3_core::campaign`] batch: a
//! mixed-protocol swap population (AC3WN / AC3TW / Herlihy / Herlihy-multi)
//! over shared asset and bonded witness chains, with the full fault
//! alphabet injected mid-batch through the scheduler — crashes, partitions,
//! 51% forks, equivocating witnesses, bribed attestations, mempool floods
//! and base-fee spikes. The defenses vary the honest posture (fee policy ×
//! witness depth); the budgets vary the griefing spend.
//!
//! The binary asserts, in-process:
//!
//! 1. **Economics** — for every defense × budget cell and every protocol
//!    lane, the measured cost-to-steal strictly exceeds the measured
//!    cost-to-defend. Cost-to-steal is the 51% fork — the only attack
//!    route that can take honest principal (probed
//!    `required_branch_blocks` at the defense's witness depth, priced at
//!    `BLOCK_COST` fee units per attacker block); witness equivocation is
//!    not a steal route, since the slash makes the attacker forfeit its
//!    stake and gain nothing. Cost-to-defend is the per-swap fees the
//!    lane actually paid under attack plus the amortized witness stake.
//! 2. **Slashing** — every equivocation yields exactly one accepted
//!    on-chain slash (canonical `ReportEquivocation` inclusion), every
//!    duplicate report is rejected, every bribed attestation is flagged by
//!    the testimony log, and no honest swap fails or loses atomicity.
//! 3. **Determinism** — the default cell replayed at 1, 2 and 4 scheduler
//!    workers produces a bitwise-identical campaign fingerprint (outcomes,
//!    fee ledger, per-chain tips, global timeline, slash count).
//!
//! The sweep is written to `BENCH_attack_campaigns.json`; its `ratchet`
//! object carries only deterministic counters and ratios (no wall-clock),
//! so CI compares it at zero drift.
//!
//! Usage: `sec63_campaigns [swaps] [budgets_csv] [seed]`
//! (defaults: 6 swaps, budgets 2000,8000, seed [`SEED`] — CI runs
//! `4 2000`).

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::Amount;
use ac3_core::scenario::ScenarioConfig;
use ac3_core::{
    execute_fork_attack, run_campaign, CampaignConfig, CampaignReport, FeePolicy, ForkAttackConfig,
    ProtocolConfig,
};
use serde::Serialize;

/// Campaign seed: fixed so the committed `BENCH_attack_campaigns.json` is
/// reproducible on any machine (the campaign is pure simulation). Chosen
/// so the plan's griefing bursts overlap the honest witness traffic: the
/// fee-policy defense is then measurable (nonzero honest overhead under
/// `Adaptive`, refunds instead of commits under `Fixed`), not vacuous.
const SEED: u64 = 3;

/// Fee units an attacker pays to mine one private-branch block at 51% of
/// the witness chain's hashrate — the Section 6.3 cost model's unit price
/// for `required_branch_blocks`.
const BLOCK_COST: Amount = 1_000;

/// One defense posture: the honest side's fee policy and witness depth.
struct Defense {
    name: &'static str,
    fee_policy: FeePolicy,
    witness_depth: u64,
}

fn defenses() -> Vec<Defense> {
    vec![
        Defense { name: "fixed-shallow", fee_policy: FeePolicy::Fixed, witness_depth: 2 },
        Defense {
            name: "adaptive",
            fee_policy: FeePolicy::Adaptive { margin: 1, cap: 64 },
            witness_depth: 2,
        },
        Defense {
            name: "adaptive-deep",
            fee_policy: FeePolicy::Adaptive { margin: 1, cap: 64 },
            witness_depth: 4,
        },
    ]
}

fn campaign_config(
    seed: u64,
    swaps: usize,
    defense: &Defense,
    budget: Amount,
    workers: usize,
) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(seed);
    cfg.swaps = swaps;
    cfg.workers = workers;
    cfg.space.griefing_budget = budget;
    cfg.protocol = ProtocolConfig {
        witness_depth: defense.witness_depth,
        deployment_depth: 1,
        wait_cap_deltas: 256,
        fee_policy: defense.fee_policy,
        ..Default::default()
    };
    cfg
}

/// Probe the 51%-fork route against `witness_depth`: the measured number
/// of private blocks the attacker must mine to reverse a buried witness
/// decision, priced at [`BLOCK_COST`] per block.
fn fork_route_cost(witness_depth: u64) -> (u64, Amount) {
    let probe = execute_fork_attack(&ForkAttackConfig {
        protocol: ProtocolConfig { witness_depth, deployment_depth: 3, ..Default::default() },
        scenario: ScenarioConfig::default(),
        asset_x: 50,
        asset_y: 80,
        attacker_budget_blocks: 0,
    })
    .expect("fork probe executes");
    assert!(!probe.attack_succeeded(), "a zero-budget fork must never win");
    (probe.required_branch_blocks, probe.required_branch_blocks as Amount * BLOCK_COST)
}

#[derive(Serialize)]
struct LaneRow {
    defense: String,
    adversary_budget: Amount,
    protocol: String,
    swaps: usize,
    committed: usize,
    aborted: usize,
    /// Per-swap honest fee overhead actually paid under the campaign:
    /// `(fees_paid − fees_scheduled) / swaps`.
    fee_overhead_per_swap: f64,
    /// Amortized witness stake per swap (witnessed protocols only).
    stake_per_swap: f64,
    cost_to_defend: f64,
    /// Cheapest attack route against this lane (fork vs equivocation).
    cost_to_steal: f64,
    steal_route: String,
    steal_to_defend_ratio: f64,
}

#[derive(Serialize)]
struct CellRow {
    defense: String,
    adversary_budget: Amount,
    fork_branch_blocks: u64,
    equivocations: usize,
    slashes_accepted: usize,
    bonds_slashed: usize,
    duplicate_slash_reports_rejected: usize,
    bribes: usize,
    bribes_detected: usize,
    adversary_fees: Amount,
    stake_slashed: Amount,
    honest_fee_overhead: Amount,
    committed: usize,
    aborted: usize,
    makespan_ms: u64,
    fingerprint: String,
}

/// The slashing/atomicity invariants every campaign cell must satisfy
/// (bench assert 2).
fn assert_slashing_invariants(label: &str, r: &CampaignReport) {
    assert_eq!(r.failed, 0, "{label}: an honest swap failed under the campaign");
    assert_eq!(r.adversary_failures, 0, "{label}: an adversary machine errored");
    assert!(r.atomic, "{label}: atomicity audit failed under the campaign");
    assert_eq!(
        r.slashes_accepted, r.equivocations,
        "{label}: every equivocation must yield exactly one accepted slash"
    );
    assert_eq!(
        r.bonds_slashed, r.equivocations,
        "{label}: every equivocating bond must end slashed"
    );
    assert_eq!(
        r.duplicate_slash_reports_rejected, r.equivocations,
        "{label}: every duplicate slash report must be rejected"
    );
    assert_eq!(r.bribes_detected, r.bribes, "{label}: every bribed attestation must be flagged");
    assert_eq!(
        r.stake_slashed > 0,
        r.equivocations > 0,
        "{label}: stake must be forfeited exactly when a witness equivocates"
    );
}

#[derive(Serialize)]
struct CampaignRecord {
    experiment: &'static str,
    seed: u64,
    swaps: usize,
    budgets: Vec<Amount>,
    block_cost: Amount,
    cells: Vec<CellRow>,
    lanes: Vec<LaneRow>,
    determinism_workers: Vec<usize>,
    determinism_fingerprint: String,
    ratchet: Vec<(String, f64)>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let swaps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let budgets: Vec<Amount> = args
        .next()
        .map(|csv| csv.split(',').filter_map(|b| b.trim().parse().ok()).collect())
        .filter(|v: &Vec<Amount>| !v.is_empty())
        .unwrap_or_else(|| vec![2_000, 8_000]);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(SEED);

    println!(
        "Adversarial campaigns: {swaps} mixed-protocol swaps per cell, defenses \
         {:?} × adversary budgets {budgets:?} (seed {seed:#x})",
        defenses().iter().map(|d| d.name).collect::<Vec<_>>(),
    );

    let mut cells: Vec<CellRow> = Vec::new();
    let mut lanes: Vec<LaneRow> = Vec::new();

    for defense in &defenses() {
        let (branch_blocks, fork_cost) = fork_route_cost(defense.witness_depth);
        for &budget in &budgets {
            let label = format!("{}/budget {budget}", defense.name);
            let cfg = campaign_config(seed, swaps, defense, budget, 1);
            let report = run_campaign(&cfg).expect("campaign executes");
            for (id, err) in &report.failures {
                eprintln!("{label}: machine {id} failed: {err}");
            }
            assert_slashing_invariants(&label, &report);

            let honest_overhead =
                report.honest_fees_paid.saturating_sub(report.honest_fees_scheduled);
            for (protocol, lane) in &report.per_protocol {
                assert_eq!(lane.failed, 0, "{label}/{protocol}: lane has failures");
                let witnessed = protocol == "Ac3Wn";
                let lane_overhead = lane.fees_paid.saturating_sub(lane.fees_scheduled) as f64
                    / lane.swaps.max(1) as f64;
                // Defending = transacting safely under attack: the fees the
                // lane actually paid per swap, plus — for the witness-network
                // protocol — the posted bonds amortized over its swaps.
                let lane_fees = lane.fees_paid as f64 / lane.swaps.max(1) as f64;
                let stake_per_swap = if witnessed {
                    report.stake_posted as f64 / lane.swaps.max(1) as f64
                } else {
                    0.0
                };
                let cost_to_defend = lane_fees + stake_per_swap;
                // Equivocation is not a steal route: the slash makes the
                // attacker forfeit its stake and gain nothing (asserted
                // above — one accepted slash per equivocation). The only
                // route that can actually take honest principal is the 51%
                // fork, whose measured price is the probed branch length.
                let (cost_to_steal, steal_route) =
                    (fork_cost as f64, format!("51% fork ({branch_blocks} blocks)"));
                assert!(
                    cost_to_steal > cost_to_defend,
                    "{label}/{protocol}: cost-to-steal {cost_to_steal} must exceed \
                     cost-to-defend {cost_to_defend}"
                );
                lanes.push(LaneRow {
                    defense: defense.name.to_string(),
                    adversary_budget: budget,
                    protocol: protocol.clone(),
                    swaps: lane.swaps,
                    committed: lane.committed,
                    aborted: lane.aborted,
                    fee_overhead_per_swap: lane_overhead,
                    stake_per_swap,
                    cost_to_defend,
                    cost_to_steal,
                    steal_route,
                    steal_to_defend_ratio: cost_to_steal / cost_to_defend.max(1e-9),
                });
            }

            cells.push(CellRow {
                defense: defense.name.to_string(),
                adversary_budget: budget,
                fork_branch_blocks: branch_blocks,
                equivocations: report.equivocations,
                slashes_accepted: report.slashes_accepted,
                bonds_slashed: report.bonds_slashed,
                duplicate_slash_reports_rejected: report.duplicate_slash_reports_rejected,
                bribes: report.bribes,
                bribes_detected: report.bribes_detected,
                adversary_fees: report.adversary_fees,
                stake_slashed: report.stake_slashed,
                honest_fee_overhead: honest_overhead,
                committed: report.committed,
                aborted: report.aborted,
                makespan_ms: report.makespan_ms,
                fingerprint: report.fingerprint.clone(),
            });
        }
    }

    // Determinism: the default cell is bitwise-reproducible at any worker
    // count (bench assert 3).
    let determinism_workers = vec![1usize, 2, 4];
    let default_defense = &defenses()[1];
    let mut determinism_fingerprint = String::new();
    for &workers in &determinism_workers {
        let cfg = campaign_config(seed, swaps, default_defense, budgets[0], workers);
        let report = run_campaign(&cfg).expect("campaign executes");
        if determinism_fingerprint.is_empty() {
            determinism_fingerprint = report.fingerprint.clone();
        } else {
            assert_eq!(
                report.fingerprint, determinism_fingerprint,
                "campaign fingerprint diverged at {workers} workers"
            );
        }
    }

    print_table(
        "Adversarial campaign sweep: slashing and griefing per defense × budget",
        &[
            "defense",
            "budget",
            "equiv",
            "slashes",
            "dup rej",
            "bribes det",
            "adv fees",
            "stake slashed",
            "honest overhead",
            "committed",
            "aborted",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.defense.clone(),
                    c.adversary_budget.to_string(),
                    c.equivocations.to_string(),
                    c.slashes_accepted.to_string(),
                    c.duplicate_slash_reports_rejected.to_string(),
                    format!("{}/{}", c.bribes_detected, c.bribes),
                    c.adversary_fees.to_string(),
                    c.stake_slashed.to_string(),
                    c.honest_fee_overhead.to_string(),
                    c.committed.to_string(),
                    c.aborted.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Cost-to-steal vs cost-to-defend per protocol lane (fee units per swap)",
        &["defense", "budget", "protocol", "defend", "steal", "route", "ratio"],
        &lanes
            .iter()
            .map(|l| {
                vec![
                    l.defense.clone(),
                    l.adversary_budget.to_string(),
                    l.protocol.clone(),
                    f2(l.cost_to_defend),
                    f2(l.cost_to_steal),
                    l.steal_route.clone(),
                    f2(l.steal_to_defend_ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // Ratchet: deterministic counters and ratios only — the campaign is
    // pure simulation, so these are machine-independent. `_count` keys are
    // compared exactly by `scripts/compare_bench.py`; the rates and the
    // ratio use the normal directional tolerance.
    let total_equivocations: usize = cells.iter().map(|c| c.equivocations).sum();
    let total_slashes: usize = cells.iter().map(|c| c.slashes_accepted).sum();
    let total_dup_rejected: usize = cells.iter().map(|c| c.duplicate_slash_reports_rejected).sum();
    let total_bribes: usize = cells.iter().map(|c| c.bribes).sum();
    let total_bribes_detected: usize = cells.iter().map(|c| c.bribes_detected).sum();
    let min_ratio = lanes.iter().map(|l| l.steal_to_defend_ratio).fold(f64::INFINITY, f64::min);
    let rate = |num: usize, den: usize| if den == 0 { 1.0 } else { num as f64 / den as f64 };
    let ratchet: Vec<(String, f64)> = vec![
        ("atomicity_rate".to_string(), 1.0),
        ("slash_acceptance_rate".to_string(), rate(total_slashes, total_equivocations)),
        ("duplicate_rejection_rate".to_string(), rate(total_dup_rejected, total_equivocations)),
        ("bribe_detection_rate".to_string(), rate(total_bribes_detected, total_bribes)),
        ("min_steal_to_defend_ratio".to_string(), min_ratio),
        ("slashes_accepted_count".to_string(), total_slashes as f64),
        ("duplicate_rejections_count".to_string(), total_dup_rejected as f64),
        ("determinism_agreement_count".to_string(), determinism_workers.len() as f64),
    ];

    let record = CampaignRecord {
        experiment: "sec63_campaigns",
        seed,
        swaps,
        budgets,
        block_cost: BLOCK_COST,
        cells,
        lanes,
        determinism_workers,
        determinism_fingerprint,
        ratchet,
    };
    let json = serde_json::to_string(&record).expect("record serializes");
    std::fs::write("BENCH_attack_campaigns.json", format!("{json}\n"))
        .expect("BENCH_attack_campaigns.json is writable");
    println!("\nCampaign sweep recorded in BENCH_attack_campaigns.json");
    print_json_rows("sec63_campaigns", &record.cells);
}
