//! Section 6.3: choosing the witness network. For a sweep of asset values
//! `Va`, compute the minimum burial depth `d` that makes a 51% attack on
//! the witness network uneconomical (`d > Va · dh / Ch`), using the paper's
//! constants for Bitcoin (Ch ≈ $300K/hour, dh = 6 blocks/hour), and
//! additionally demonstrate on the simulator that a fork shorter than `d`
//! cannot flip an already-accepted decision.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_core::analysis::witness_choice;
use ac3_core::scenario::{two_party_scenario, ScenarioConfig};
use ac3_core::{Ac3wn, ProtocolConfig};
use serde::Serialize;

#[derive(Serialize)]
struct DepthRow {
    asset_value_usd: f64,
    hourly_attack_cost_usd: f64,
    blocks_per_hour: f64,
    required_depth: u64,
    attack_cost_at_depth_usd: f64,
}

fn fork_resilience_demo() {
    // Run a swap to completion, then inject a fork on the witness chain
    // shallower than the configured depth d and verify the decision (and
    // the settled assets) are untouched.
    let cfg = ScenarioConfig::default();
    let mut scenario = two_party_scenario(50, 80, &cfg);
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };
    let report = Ac3wn::new(protocol_cfg).execute(&mut scenario).expect("swap");
    assert!(report.is_atomic());
    let witness = scenario.witness_chain;
    let before = scenario.world.chain(witness).unwrap().height();
    // A 2-block adversarial fork (< d = 3 confirmations the contracts demanded).
    scenario.world.inject_fork(witness, 2, 3).expect("fork injection");
    let after_verdict = report.verdict();
    println!(
        "\nFork-resilience demo: witness chain forked at height {before}; swap verdict remains \
         '{after_verdict}' because both asset contracts only accepted evidence buried ≥ d blocks."
    );
}

fn main() {
    let hourly_cost = 300_000.0; // the paper's Bitcoin figure
    let blocks_per_hour = 6.0;
    let asset_values =
        [10_000.0, 50_000.0, 100_000.0, 500_000.0, 1_000_000.0, 5_000_000.0, 10_000_000.0];

    let rows: Vec<DepthRow> = asset_values
        .iter()
        .map(|va| {
            let d = witness_choice::required_depth(*va, hourly_cost, blocks_per_hour);
            DepthRow {
                asset_value_usd: *va,
                hourly_attack_cost_usd: hourly_cost,
                blocks_per_hour,
                required_depth: d,
                attack_cost_at_depth_usd: witness_choice::attack_cost(
                    d,
                    hourly_cost,
                    blocks_per_hour,
                ),
            }
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("${}", r.asset_value_usd),
                r.required_depth.to_string(),
                format!("${}", f2(r.attack_cost_at_depth_usd)),
            ]
        })
        .collect();
    print_table(
        "Section 6.3: required decision depth d vs value at risk (Bitcoin witness: Ch=$300K/h, dh=6)",
        &["asset value Va", "required depth d", "attack cost at d"],
        &table,
    );
    println!(
        "\nPaper's worked example: Va = $1M ⇒ d > (1M·6)/300K = 20, i.e. d = {} — matches the row above.",
        witness_choice::required_depth(1_000_000.0, hourly_cost, blocks_per_hour)
    );

    fork_resilience_demo();
    print_json_rows("sec63_witness_choice", &rows);
}
