//! Section 6.2: the monetary cost overhead of AC3WN over Herlihy's protocol
//! as the number of contracts N in the AC2T grows. Both the closed-form
//! model (N vs N+1 contracts, each costing fd + ffc) and the fees actually
//! charged by the simulated chains are reported, plus the paper's dollar
//! estimate of the overhead at two ETH/USD rates.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_core::analysis::cost;
use ac3_core::scenario::{ring_scenario, ScenarioConfig};
use ac3_core::{Ac3wn, Herlihy, ProtocolConfig};
use serde::Serialize;

#[derive(Serialize)]
struct CostRow {
    contracts: u64,
    herlihy_model_fee: u64,
    herlihy_measured_fee: u64,
    ac3wn_model_fee: u64,
    ac3wn_measured_fee: u64,
    overhead_ratio: f64,
}

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let cfg = ScenarioConfig::default();
    let deploy_fee = cfg.asset_chain_template.deploy_fee;
    let call_fee = cfg.asset_chain_template.call_fee;
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    let mut rows = Vec::new();
    for n in 2..=max_n {
        let mut herlihy_scenario = ring_scenario(n, 10, &cfg);
        let herlihy =
            Herlihy::new(protocol_cfg.clone()).execute(&mut herlihy_scenario).expect("herlihy");
        let mut ac3wn_scenario = ring_scenario(n, 10, &cfg);
        let ac3wn = Ac3wn::new(protocol_cfg.clone()).execute(&mut ac3wn_scenario).expect("ac3wn");

        rows.push(CostRow {
            contracts: n as u64,
            herlihy_model_fee: cost::herlihy_fee(n as u64, deploy_fee, call_fee),
            herlihy_measured_fee: herlihy.fees_paid,
            ac3wn_model_fee: cost::ac3wn_fee(n as u64, deploy_fee, call_fee),
            ac3wn_measured_fee: ac3wn.fees_paid,
            overhead_ratio: cost::overhead_ratio(n as u64),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.contracts.to_string(),
                r.herlihy_model_fee.to_string(),
                r.herlihy_measured_fee.to_string(),
                r.ac3wn_model_fee.to_string(),
                r.ac3wn_measured_fee.to_string(),
                f2(r.overhead_ratio),
            ]
        })
        .collect();
    print_table(
        "Section 6.2: AC2T fees (asset units) vs number of contracts N",
        &[
            "N",
            "Herlihy model",
            "Herlihy measured",
            "AC3WN model",
            "AC3WN measured",
            "overhead 1/N",
        ],
        &table,
    );
    println!(
        "\nAC3WN always pays for exactly one extra contract (SC_w) and one extra call: \
         overhead = 1/N of Herlihy's fee."
    );
    println!(
        "Dollar estimate of the overhead (Section 6.2): ≈${} at $300/ETH, ≈${} at $140/ETH.",
        f2(cost::overhead_usd(300.0)),
        f2(cost::overhead_usd(140.0))
    );
    print_json_rows("sec62_cost", &rows);
}
