//! Section 6.3, executed: a 51% fork attack against the witness chain.
//!
//! The companion binary `sec63_witness_choice` reproduces the paper's
//! *analytical* inequality `d > Va · dh / Ch`. This binary runs the attack
//! itself on the simulator for a sweep of confirmation depths `d`:
//!
//! * the attack is attempted with a budget derived from the value at risk
//!   (`Va`): the attacker can afford `⌊Va · dh / Ch⌋` privately mined
//!   blocks;
//! * for each depth the simulator reports whether the fork both wins the
//!   longest-chain race and buries the forged `RFauth` deep enough to be
//!   accepted by the asset contracts — i.e. whether all-or-nothing
//!   atomicity is actually violated;
//! * the expected shape: the attack succeeds for every `d` below the
//!   paper's required depth and fails at and above it.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_core::analysis::witness_choice;
use ac3_core::attack::{execute_fork_attack, ForkAttackConfig};
use ac3_core::scenario::ScenarioConfig;
use ac3_core::ProtocolConfig;
use serde::Serialize;

#[derive(Serialize)]
struct AttackRow {
    witness_depth: u64,
    affordable_blocks: u64,
    required_blocks: u64,
    attack_cost_usd: f64,
    reorg_won: bool,
    refund_accepted: bool,
    atomicity_violated: bool,
    verdict: String,
}

fn main() {
    // The paper's Bitcoin witness figures and worked example.
    let hourly_cost = 300_000.0;
    let blocks_per_hour = 6.0;
    let value_at_risk =
        std::env::args().nth(1).and_then(|v| v.parse::<f64>().ok()).unwrap_or(250_000.0);

    // How many blocks the attacker can afford to mine before the attack
    // stops being profitable.
    let affordable_blocks = (value_at_risk * blocks_per_hour / hourly_cost).floor() as u64;
    let paper_required_depth =
        witness_choice::required_depth(value_at_risk, hourly_cost, blocks_per_hour);

    let depths: Vec<u64> = (1..=paper_required_depth + 2).collect();
    let mut rows = Vec::with_capacity(depths.len());
    for d in depths {
        let cfg = ForkAttackConfig {
            protocol: ProtocolConfig {
                witness_depth: d,
                deployment_depth: 2,
                ..Default::default()
            },
            scenario: ScenarioConfig::default(),
            attacker_budget_blocks: affordable_blocks,
            ..Default::default()
        };
        let report = execute_fork_attack(&cfg).expect("attack experiment runs");
        rows.push(AttackRow {
            witness_depth: d,
            affordable_blocks,
            required_blocks: report.required_branch_blocks,
            attack_cost_usd: witness_choice::attack_cost(
                report.required_branch_blocks,
                hourly_cost,
                blocks_per_hour,
            ),
            reorg_won: report.reorg_won,
            refund_accepted: report.refund_accepted,
            atomicity_violated: !report.verdict.is_atomic(),
            verdict: report.verdict.to_string(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.witness_depth.to_string(),
                r.required_blocks.to_string(),
                format!("${}", f2(r.attack_cost_usd)),
                r.affordable_blocks.to_string(),
                if r.atomicity_violated { "VIOLATED".to_string() } else { "atomic".to_string() },
            ]
        })
        .collect();
    print_table(
        &format!(
            "Section 6.3 (executed): fork attack on the witness chain, Va = ${value_at_risk}, \
             Ch = $300K/h, dh = 6 blocks/h"
        ),
        &[
            "depth d",
            "blocks attacker needs",
            "cost of those blocks",
            "blocks attacker affords",
            "outcome",
        ],
        &table,
    );
    println!(
        "\nPaper's analytical rule for this Va: d ≥ {paper_required_depth} (the attacker affords \
         {affordable_blocks} blocks). Expected shape: every depth whose required branch fits in \
         the budget is VIOLATED; the first depth whose required branch exceeds the budget — and \
         every deeper one — stays atomic. The measured crossover sits at or below the analytical \
         bound because the executed attack also has to out-mine the blocks the honest network \
         produced while the attacker was redeeming, so the paper's inequality is conservative."
    );
    print_json_rows("sec63_attack", &rows);
}
