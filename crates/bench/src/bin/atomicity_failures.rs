//! Experiment E6 (Section 1's "case against the current proposals" and the
//! Lemma 5.1 guarantee): atomicity of a two-party swap under crash
//! failures, for all four protocols.
//!
//! Scenarios:
//! * `no-fault` — everything is honest and available;
//! * `crash-before-deploy` — the counterparty crashes before publishing its
//!   contract and never returns during the run;
//! * `crash-before-redeem` — the counterparty crashes after the contracts
//!   are published but before redeeming, and recovers only long after every
//!   timelock has expired (the paper's motivating failure).
//!
//! Expected shape: the hashlock/timelock baselines (Nolan, Herlihy) lose
//! atomicity in the `crash-before-redeem` scenario — the crashed participant
//! ends up worse off — while AC3TW and AC3WN stay atomic in every scenario.

use ac3_bench::{print_json_rows, print_table};
use ac3_core::scenario::{two_party_scenario, ScenarioConfig};
use ac3_core::{
    Ac3tw, Ac3wn, Herlihy, HerlihyMulti, Nolan, ProtocolConfig, ProtocolKind, SwapReport,
};
use ac3_sim::CrashWindow;
use serde::Serialize;

#[derive(Serialize)]
struct FaultRow {
    protocol: String,
    scenario: String,
    atomic: bool,
    committed: bool,
    verdict: String,
}

#[derive(Clone, Copy, PartialEq)]
enum FaultScenario {
    NoFault,
    CrashBeforeDeploy,
    CrashBeforeRedeem,
}

impl FaultScenario {
    fn name(&self) -> &'static str {
        match self {
            FaultScenario::NoFault => "no-fault",
            FaultScenario::CrashBeforeDeploy => "crash-before-deploy",
            FaultScenario::CrashBeforeRedeem => "crash-before-redeem",
        }
    }

    fn crash_window(&self) -> Option<CrashWindow> {
        match self {
            FaultScenario::NoFault => None,
            // Crashed from the very start, for the entire run.
            FaultScenario::CrashBeforeDeploy => Some(CrashWindow { from: 0, until: 10_000_000 }),
            // Crashed after deployment (Δ = 4 s, deployments finish ~8 s in)
            // and until far past every timelock.
            FaultScenario::CrashBeforeRedeem => {
                Some(CrashWindow { from: 9_000, until: 10_000_000 })
            }
        }
    }
}

fn run(protocol: ProtocolKind, scenario_kind: FaultScenario) -> SwapReport {
    let cfg = ScenarioConfig::default();
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };
    let mut s = two_party_scenario(50, 80, &cfg);
    let alice = s.participants.get("alice").unwrap().address();
    // The paper's motivating failure crashes the participant who redeems
    // *last* (the non-leader). Alice leads Nolan/Herlihy below, so Bob is
    // the crash target; the multi-leader variant derives its leader set from
    // the graph, so crash whichever participant is not a leader.
    let crash_target = if protocol == ProtocolKind::HerlihyMulti {
        let leaders = HerlihyMulti::supports_graph(&s.graph).expect("two-party graph supported");
        let bob_addr = s.participants.get("bob").unwrap().address();
        if leaders.contains(&bob_addr) {
            "alice"
        } else {
            "bob"
        }
    } else {
        "bob"
    };
    if let Some(window) = scenario_kind.crash_window() {
        s.participants.get_mut(crash_target).unwrap().schedule_crash(window);
    }
    match protocol {
        ProtocolKind::Nolan => Nolan::new(protocol_cfg).execute(&mut s).expect("nolan"),
        ProtocolKind::Herlihy => {
            let driver = Herlihy::with_leader(protocol_cfg, alice);
            driver.execute(&mut s).expect("herlihy")
        }
        ProtocolKind::HerlihyMulti => {
            HerlihyMulti::new(protocol_cfg).execute(&mut s).expect("herlihy-multi")
        }
        ProtocolKind::Ac3Tw => Ac3tw::new(protocol_cfg).execute(&mut s).expect("ac3tw"),
        ProtocolKind::Ac3Wn => Ac3wn::new(protocol_cfg).execute(&mut s).expect("ac3wn"),
    }
}

fn main() {
    let protocols = [
        ProtocolKind::Nolan,
        ProtocolKind::Herlihy,
        ProtocolKind::HerlihyMulti,
        ProtocolKind::Ac3Tw,
        ProtocolKind::Ac3Wn,
    ];
    let scenarios = [
        FaultScenario::NoFault,
        FaultScenario::CrashBeforeDeploy,
        FaultScenario::CrashBeforeRedeem,
    ];

    let mut rows = Vec::new();
    for protocol in protocols {
        for scenario in scenarios {
            let report = run(protocol, scenario);
            let verdict = report.verdict();
            rows.push(FaultRow {
                protocol: protocol.to_string(),
                scenario: scenario.name().to_string(),
                atomic: verdict.is_atomic(),
                committed: verdict.is_committed(),
                verdict: verdict.to_string(),
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.protocol.clone(),
                r.scenario.clone(),
                if r.atomic { "yes".to_string() } else { "VIOLATED".to_string() },
                r.committed.to_string(),
                r.verdict.clone(),
            ]
        })
        .collect();
    print_table(
        "E6: atomicity of a two-party swap under crash failures",
        &["protocol", "scenario", "atomic", "committed", "verdict"],
        &table,
    );
    println!(
        "\nExpected shape (paper, Section 1 + Lemma 5.1): Nolan and Herlihy violate all-or-nothing \
         when the redeemer crashes past its timelock; AC3TW and AC3WN never do."
    );
    print_json_rows("atomicity_failures", &rows);
}
