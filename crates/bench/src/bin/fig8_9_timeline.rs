//! Figures 8 and 9: per-phase timelines of one AC2T under Herlihy's
//! protocol (sequential deploy then sequential redeem — Figure 8) and under
//! AC3WN (four constant-length phases — Figure 9). Event times are printed
//! in Δ units relative to the start of the swap.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_core::scenario::{ring_scenario, ScenarioConfig};
use ac3_core::{Ac3wn, Herlihy, ProtocolConfig, SwapReport};
use ac3_sim::EventKind;
use serde::Serialize;

#[derive(Serialize)]
struct TimelineRow {
    protocol: String,
    event: String,
    at_delta: f64,
}

fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::GraphSigned => "graph multisigned".to_string(),
        EventKind::WitnessRegistered => "witness contract SC_w registered".to_string(),
        EventKind::ContractSubmitted { chain, .. } => format!("contract submitted on {chain}"),
        EventKind::ContractPublished { chain, .. } => format!("contract published on {chain}"),
        EventKind::DecisionReached { commit } => {
            format!(
                "decision reached: {}",
                if *commit { "commit (RDauth)" } else { "abort (RFauth)" }
            )
        }
        EventKind::ContractRedeemed { chain, .. } => format!("contract redeemed on {chain}"),
        EventKind::ContractRefunded { chain, .. } => format!("contract refunded on {chain}"),
        EventKind::Note(n) => n.clone(),
    }
}

fn rows_for(report: &SwapReport, label: &str) -> Vec<TimelineRow> {
    report
        .timeline
        .events()
        .iter()
        .map(|e| TimelineRow {
            protocol: label.to_string(),
            event: describe(&e.kind),
            at_delta: (e.at.saturating_sub(report.started_at)) as f64 / report.delta_ms as f64,
        })
        .collect()
}

fn main() {
    let participants: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5);
    let cfg = ScenarioConfig::default();
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    let mut herlihy_scenario = ring_scenario(participants, 10, &cfg);
    let herlihy =
        Herlihy::new(protocol_cfg.clone()).execute(&mut herlihy_scenario).expect("herlihy");

    let mut ac3wn_scenario = ring_scenario(participants, 10, &cfg);
    let ac3wn = Ac3wn::new(protocol_cfg).execute(&mut ac3wn_scenario).expect("ac3wn");

    let mut rows = rows_for(&herlihy, "Herlihy (Figure 8)");
    rows.extend(rows_for(&ac3wn, "AC3WN (Figure 9)"));

    let table: Vec<Vec<String>> =
        rows.iter().map(|r| vec![r.protocol.clone(), f2(r.at_delta), r.event.clone()]).collect();
    print_table(
        &format!("Figures 8 & 9: phase timeline for a {participants}-contract AC2T (times in Δ)"),
        &["protocol", "t (Δ)", "event"],
        &table,
    );
    println!(
        "\nHerlihy total: {:.2}Δ (sequential waves); AC3WN total: {:.2}Δ (four parallel phases).",
        herlihy.latency_in_deltas(),
        ac3wn.latency_in_deltas()
    );
    print_json_rows("fig8_9_timeline", &rows);
}
