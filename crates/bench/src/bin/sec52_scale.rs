//! Experiment E9 (Section 5.2 at scale): the parallel sharded scheduler
//! driving hundreds of tps-constrained witness chains and thousands of
//! mixed-protocol swaps in one world.
//!
//! The workload is `clusters` mutually disjoint swap clusters
//! ([`ac3_core::scenario::clustered_swaps_scenario`]): each cluster owns
//! two generous asset chains plus one **tps-constrained** witness chain
//! (2 tps), and runs `swaps_per_cluster` two-party swaps under a
//! round-robin protocol mix — AC3WN, AC3TW, Herlihy, Herlihy-multi. The
//! witnessed protocols queue their registrations and authorizations in the
//! starved witness mempools, so contention is measured, not modelled.
//!
//! The batch is scheduled at several worker counts over the same seeded
//! world. The binary asserts, in-process:
//!
//! 1. **Determinism** — committed count, tick count, makespan and total
//!    fees are identical at every worker count (the sharded scheduler's
//!    bitwise-reproducibility contract).
//! 2. **Atomicity at scale** — every swap commits, every swap passes the
//!    audit, chain-state integrity holds.
//! 3. **Timelock safety under contention** — every committed swap finished
//!    inside its protocol wait cap: `latency < wait_cap_deltas · Δ`, with
//!    the minimum margin reported per protocol.
//! 4. **Contention shape** — the witnessed protocols (which share the
//!    starved witness chains) show p95 latency at least as high as the
//!    witness-free Herlihy baselines.
//!
//! The run summary (per-worker wall-clock throughput of the scheduler loop
//! plus per-protocol latency distributions) is written to
//! `BENCH_parallel_scale.json`; the committed copy tracks the same shape
//! CI's tiny-budget run asserts. The raw serial-vs-parallel speedup gate
//! (≥ 2× at 4 workers on a 200-chain/1k-swap batch) lives in the
//! `parallel_scale` criterion bench.
//!
//! Usage: `sec52_scale [clusters] [swaps_per_cluster] [max_workers]`
//! (defaults: 250 40 4 — 10,000 swaps over 250 witness + 500 asset
//! chains; CI runs `8 4 4`).

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::ChainParams;
use ac3_core::scenario::{clustered_swaps_scenario, MultiSwapScenario, ScenarioConfig};
use ac3_core::{
    Ac3tw, Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, ProtocolKind, Scheduler, SwapMachine,
};
use ac3_sim::{LatencyStats, SwapId};
use serde::Serialize;
use std::time::Instant;

/// Protocol wait cap: queueing on a 2 tps witness chain must read as
/// delay, not failure, even with dozens of clustermates.
const WAIT_CAP_DELTAS: u64 = 64;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        wait_cap_deltas: WAIT_CAP_DELTAS,
        ..Default::default()
    }
}

fn build_scenario(clusters: usize, swaps_per_cluster: usize) -> MultiSwapScenario {
    let cfg = ScenarioConfig {
        asset_chain_template: ChainParams::fast("asset", 1_000),
        // 2 tps: each committed witnessed swap needs two witness-chain
        // transactions, so a cluster's witnessed swaps genuinely queue.
        witness_chain_template: ChainParams::fast("witness", 2),
        funding: 1_000,
    };
    clustered_swaps_scenario(clusters, swaps_per_cluster, 2, &cfg)
}

/// The scale workload's protocol mix: swap `i` runs under protocol
/// `i mod 4` (AC3WN, AC3TW, Herlihy, Herlihy-multi).
fn mixed_machines(s: &MultiSwapScenario) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    let ac3wn = Ac3wn::new(protocol_cfg());
    let ac3tw = Ac3tw::new(protocol_cfg());
    let herlihy = Herlihy::new(protocol_cfg());
    let herlihy_multi = HerlihyMulti::new(protocol_cfg());
    s.swaps
        .iter()
        .enumerate()
        .map(|(i, swap)| {
            let machine: Box<dyn SwapMachine> = match i % 4 {
                0 => Box::new(ac3wn.machine(swap.graph.clone(), swap.witness)),
                1 => Box::new(ac3tw.machine(swap.graph.clone())),
                2 => Box::new(herlihy.machine(swap.graph.clone()).expect("two-party has a leader")),
                _ => Box::new(herlihy_multi.machine(swap.graph.clone()).expect("valid graph")),
            };
            (swap.id, machine)
        })
        .collect()
}

#[derive(Serialize)]
struct WorkerRow {
    workers: usize,
    wall_ms: u64,
    /// Wall-clock scheduler throughput: swaps driven to completion per
    /// real second.
    swaps_per_wall_sec: f64,
    speedup_vs_serial: f64,
    makespan_ms: u64,
    ticks: u64,
    committed: usize,
}

#[derive(Serialize)]
struct ProtocolRow {
    protocol: String,
    swaps: usize,
    mean_latency_deltas: f64,
    p50_latency_deltas: f64,
    p95_latency_deltas: f64,
    max_latency_deltas: f64,
    /// Worst-case timelock-safety margin: `wait_cap − latency/Δ` over the
    /// protocol's swaps. Positive means every swap finished inside its
    /// protocol timelock budget despite the witness-chain queueing.
    min_margin_deltas: f64,
}

/// One scheduled run of the full batch at `workers` threads; returns the
/// wall time and the per-protocol latency stats (in Δ units).
fn run_once(
    clusters: usize,
    swaps_per_cluster: usize,
    workers: usize,
) -> (WorkerRow, Vec<ProtocolRow>) {
    let swaps = clusters * swaps_per_cluster;
    let mut s = build_scenario(clusters, swaps_per_cluster);
    let machines = mixed_machines(&s);

    let t0 = Instant::now();
    let batch =
        Scheduler::default().with_workers(workers).run(&mut s.world, &mut s.participants, machines);
    let wall = t0.elapsed();

    assert_eq!(batch.failed(), 0, "workers={workers}: queueing must delay swaps, not fail them");
    // The Herlihy baselines carry no witness decision (`decision: None`),
    // so count commits by the atomicity verdict, which covers all four
    // protocols uniformly.
    let committed = batch.reports().filter(|(_, r)| r.verdict().is_committed()).count();
    assert_eq!(committed, swaps, "workers={workers}: every swap must commit");
    assert!(batch.all_atomic(), "workers={workers}: atomicity audit failed at scale");
    s.world.assert_state_integrity();

    // Per-protocol latency distributions and timelock-safety margins.
    let mut stats: Vec<(ProtocolKind, LatencyStats, f64)> = Vec::new();
    for (_, r) in batch.reports() {
        let entry = match stats.iter_mut().find(|(k, _, _)| *k == r.protocol) {
            Some(entry) => entry,
            None => {
                stats.push((r.protocol, LatencyStats::new(), f64::INFINITY));
                stats.last_mut().expect("just pushed")
            }
        };
        entry.1.record(r.latency_ms());
        let margin = WAIT_CAP_DELTAS as f64 - r.latency_ms() as f64 / r.delta_ms as f64;
        entry.2 = entry.2.min(margin);
    }
    let delta = 4_000.0; // 1 s blocks, stable depth 3 ⇒ Δ = 4 s everywhere
    let protocols: Vec<ProtocolRow> = stats
        .iter()
        .map(|(kind, lat, min_margin)| ProtocolRow {
            protocol: format!("{kind:?}"),
            swaps: lat.len(),
            mean_latency_deltas: lat.mean().unwrap_or(0.0) / delta,
            p50_latency_deltas: lat.percentile(50.0).unwrap_or(0) as f64 / delta,
            p95_latency_deltas: lat.percentile(95.0).unwrap_or(0) as f64 / delta,
            max_latency_deltas: lat.max().unwrap_or(0) as f64 / delta,
            min_margin_deltas: *min_margin,
        })
        .collect();

    let wall_ms = wall.as_millis() as u64;
    let row = WorkerRow {
        workers,
        wall_ms,
        swaps_per_wall_sec: swaps as f64 * 1_000.0 / (wall.as_secs_f64() * 1_000.0).max(1e-9),
        speedup_vs_serial: 0.0, // filled in by the sweep
        makespan_ms: batch.makespan_ms(),
        ticks: batch.ticks,
        committed,
    };
    (row, protocols)
}

#[derive(Serialize)]
struct ScaleRecord {
    experiment: &'static str,
    clusters: usize,
    swaps: usize,
    witness_chains: usize,
    asset_chains: usize,
    witness_tps: u64,
    wait_cap_deltas: u64,
    runs: Vec<WorkerRow>,
    protocols: Vec<ProtocolRow>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clusters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(250);
    let swaps_per_cluster: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let max_workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let swaps = clusters * swaps_per_cluster;

    let mut worker_counts = vec![1usize, 2, 4, max_workers];
    worker_counts.retain(|w| *w <= max_workers.max(1));
    worker_counts.sort();
    worker_counts.dedup();

    println!(
        "Scale workload: {clusters} clusters × {swaps_per_cluster} swaps = {swaps} swaps \
         (protocol mix AC3WN/AC3TW/Herlihy/Herlihy-multi) over {} asset chains and \
         {clusters} witness chains at 2 tps; workers swept: {worker_counts:?}",
        clusters * 2,
    );

    let mut runs: Vec<WorkerRow> = Vec::new();
    let mut protocols: Vec<ProtocolRow> = Vec::new();
    for &workers in &worker_counts {
        let (mut row, prot) = run_once(clusters, swaps_per_cluster, workers);
        row.speedup_vs_serial = if let Some(serial) = runs.first() {
            serial.wall_ms as f64 / row.wall_ms.max(1) as f64
        } else {
            1.0
        };
        if let Some(serial) = runs.first() {
            // Determinism contract: the simulated outcome must not depend
            // on the worker count.
            assert_eq!(row.committed, serial.committed, "workers={workers}: committed diverged");
            assert_eq!(row.ticks, serial.ticks, "workers={workers}: tick count diverged");
            assert_eq!(row.makespan_ms, serial.makespan_ms, "workers={workers}: makespan diverged");
        } else {
            protocols = prot;
        }
        runs.push(row);
    }

    // Timelock safety under contention: every protocol's worst swap still
    // finished inside its wait cap.
    for p in &protocols {
        assert!(
            p.min_margin_deltas > 0.0,
            "{}: a swap exceeded its timelock budget (margin {}Δ)",
            p.protocol,
            p.min_margin_deltas
        );
    }
    // Contention shape: the witnessed protocols queue on the starved
    // witness chains; the witness-free Herlihy baselines do not.
    let p95 = |name: &str| {
        protocols.iter().find(|p| p.protocol == name).map(|p| p.p95_latency_deltas).unwrap_or(0.0)
    };
    if swaps >= 8 {
        assert!(
            p95("Ac3Wn") >= p95("Herlihy"),
            "witnessed swaps must feel the witness-chain contention ({} vs {})",
            p95("Ac3Wn"),
            p95("Herlihy")
        );
    }

    print_table(
        "Section 5.2 at scale: one seeded batch, swept over scheduler worker threads",
        &["workers", "wall ms", "swaps/wall-s", "speedup", "sim makespan ms", "ticks", "committed"],
        &runs
            .iter()
            .map(|r| {
                vec![
                    r.workers.to_string(),
                    r.wall_ms.to_string(),
                    f2(r.swaps_per_wall_sec),
                    f2(r.speedup_vs_serial),
                    r.makespan_ms.to_string(),
                    r.ticks.to_string(),
                    r.committed.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "Per-protocol latency distribution and timelock-safety margin (Δ units)",
        &["protocol", "swaps", "mean", "p50", "p95", "max", "min margin"],
        &protocols
            .iter()
            .map(|p| {
                vec![
                    p.protocol.clone(),
                    p.swaps.to_string(),
                    f2(p.mean_latency_deltas),
                    f2(p.p50_latency_deltas),
                    f2(p.p95_latency_deltas),
                    f2(p.max_latency_deltas),
                    f2(p.min_margin_deltas),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let record = ScaleRecord {
        experiment: "sec52_scale",
        clusters,
        swaps,
        witness_chains: clusters,
        asset_chains: clusters * 2,
        witness_tps: 2,
        wait_cap_deltas: WAIT_CAP_DELTAS,
        runs,
        protocols,
    };
    let json = serde_json::to_string(&record).expect("record serializes");
    std::fs::write("BENCH_parallel_scale.json", format!("{json}\n"))
        .expect("BENCH_parallel_scale.json is writable");
    println!("\nScale sweep recorded in BENCH_parallel_scale.json");
    print_json_rows("sec52_scale", &record.runs);
}
