//! Figure 10 (and Section 6.1): end-to-end AC2T latency, in Δ units, as the
//! transaction-graph diameter grows — Herlihy's single-leader protocol vs
//! AC3WN, both as the paper's analytical model and as measured against the
//! chain simulator.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_core::analysis::{latency, LatencyRow};
use ac3_core::scenario::{ring_scenario, ScenarioConfig};
use ac3_core::{Ac3wn, Herlihy, ProtocolConfig};

fn measure(diameter: usize) -> (f64, f64) {
    let cfg = ScenarioConfig::default();
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    let mut herlihy_scenario = ring_scenario(diameter, 10, &cfg);
    let herlihy_report =
        Herlihy::new(protocol_cfg.clone()).execute(&mut herlihy_scenario).expect("herlihy run");
    assert!(herlihy_report.is_atomic(), "herlihy run must stay atomic without faults");

    let mut ac3wn_scenario = ring_scenario(diameter, 10, &cfg);
    let ac3wn_report = Ac3wn::new(protocol_cfg).execute(&mut ac3wn_scenario).expect("ac3wn run");
    assert!(ac3wn_report.is_atomic(), "ac3wn run must stay atomic without faults");

    (herlihy_report.latency_in_deltas(), ac3wn_report.latency_in_deltas())
}

fn main() {
    let max_diameter: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);

    let mut rows = Vec::new();
    for diameter in 2..=max_diameter {
        let (herlihy_measured, ac3wn_measured) = measure(diameter);
        rows.push(LatencyRow {
            diameter: diameter as u64,
            herlihy_model: latency::herlihy_deltas(diameter as u64),
            ac3wn_model: latency::ac3wn_deltas(diameter as u64),
            herlihy_measured,
            ac3wn_measured,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.diameter.to_string(),
                r.herlihy_model.to_string(),
                f2(r.herlihy_measured),
                r.ac3wn_model.to_string(),
                f2(r.ac3wn_measured),
            ]
        })
        .collect();
    print_table(
        "Figure 10: AC2T latency (Δ units) vs graph diameter",
        &["Diam(D)", "Herlihy model", "Herlihy measured", "AC3WN model", "AC3WN measured"],
        &table,
    );
    println!(
        "\nShape check: Herlihy grows linearly (2·Δ·Diam), AC3WN stays constant (~4·Δ); \
         they tie at Diam(D) = 2 and AC3WN wins beyond that."
    );
    print_json_rows("fig10_latency", &rows);
}
