//! Experiment E7 (Figure 7, Section 5.3): complex AC2T graphs.
//!
//! Herlihy's single-leader protocol cannot execute disconnected graphs (and
//! fails on cyclic graphs that stay cyclic after removing every candidate
//! leader); Herlihy's multi-leader variant recovers the cyclic cases but
//! still cannot express disconnected graphs; AC3WN executes any graph shape
//! because the commit decision does not depend on a participant ordering.

use ac3_bench::{f2, print_json_rows, print_table};
use ac3_chain::ChainParams;
use ac3_core::scenario::{
    concurrent_custom_swaps, custom_scenario, figure7a_scenario, figure7b_scenario, ScenarioConfig,
};
use ac3_core::{
    Ac3wn, Herlihy, HerlihyMulti, ProtocolConfig, ProtocolError, Scheduler, SwapMachine,
};
use ac3_sim::SwapId;
use serde::Serialize;

#[derive(Serialize)]
struct GraphRow {
    graph: String,
    shape: String,
    herlihy: String,
    herlihy_multi: String,
    ac3wn: String,
}

fn run_case(name: &str, build: impl Fn() -> ac3_core::Scenario) -> GraphRow {
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };

    let mut herlihy_scenario = build();
    let shape = format!("{:?}", herlihy_scenario.graph.shape());
    let herlihy = match Herlihy::new(protocol_cfg.clone()).execute(&mut herlihy_scenario) {
        Ok(report) => format!("{}", report.verdict()),
        Err(ProtocolError::UnsupportedGraph(_)) => "UNSUPPORTED".to_string(),
        Err(e) => format!("error: {e}"),
    };

    let mut multi_scenario = build();
    let herlihy_multi = match HerlihyMulti::new(protocol_cfg.clone()).execute(&mut multi_scenario) {
        Ok(report) => format!("{}", report.verdict()),
        Err(ProtocolError::UnsupportedGraph(_)) => "UNSUPPORTED".to_string(),
        Err(e) => format!("error: {e}"),
    };

    let mut ac3wn_scenario = build();
    let ac3wn = match Ac3wn::new(protocol_cfg).execute(&mut ac3wn_scenario) {
        Ok(report) => format!("{}", report.verdict()),
        Err(e) => format!("error: {e}"),
    };

    GraphRow { graph: name.to_string(), shape, herlihy, herlihy_multi, ac3wn }
}

fn main() {
    let cfg = ScenarioConfig::default();
    let rows = vec![
        run_case("two-party swap (Figure 4)", || {
            custom_scenario(&["alice", "bob"], &[(0, 1, 50), (1, 0, 80)], &cfg)
        }),
        run_case("cyclic 3-party ring (Figure 7a)", || figure7a_scenario(&cfg)),
        run_case("disconnected 2×2 swap (Figure 7b)", || figure7b_scenario(&cfg)),
        run_case("two independent cycles (no valid leader)", || {
            custom_scenario(
                &["a", "b", "c", "d"],
                &[(0, 1, 1), (1, 0, 2), (2, 3, 3), (3, 2, 4)],
                &cfg,
            )
        }),
        run_case("bridged double cycle (no single leader, connected)", || {
            custom_scenario(
                &["a", "b", "c", "d"],
                &[(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40), (1, 2, 50)],
                &cfg,
            )
        }),
        run_case("five-party supply-chain ring", || {
            custom_scenario(
                &["manufacturer", "shipper", "retailer", "insurer", "bank"],
                &[(0, 1, 40), (1, 2, 40), (2, 3, 15), (3, 4, 10), (4, 0, 90)],
                &cfg,
            )
        }),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.graph.clone(),
                r.shape.clone(),
                r.herlihy.clone(),
                r.herlihy_multi.clone(),
                r.ac3wn.clone(),
            ]
        })
        .collect();
    print_table(
        "Figure 7 / Section 5.3: protocol support for complex AC2T graphs",
        &["graph", "shape", "Herlihy (single leader)", "Herlihy (multi-leader)", "AC3WN"],
        &table,
    );
    println!(
        "\nExpected shape: the single-leader baseline cannot execute disconnected graphs or cyclic \
         graphs without a valid leader; the multi-leader variant recovers connected cyclic graphs \
         but still rejects disconnected ones; AC3WN commits every graph atomically."
    );
    print_json_rows("fig7_complex_graphs", &rows);

    // ------------------------------------------------------------------
    // Bonus: the complex graphs above do not need a private world each —
    // every protocol is a step/poll machine, so a multi-leader bridged
    // double cycle, a single-leader cycle and an AC3WN two-party swap all
    // interleave under one scheduler over shared chains.
    // ------------------------------------------------------------------
    let protocol_cfg =
        ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() };
    let graphs = vec![
        vec![(0, 1, 50), (1, 0, 80)], // AC3WN
        vec![(0, 1, 10), (1, 0, 20), (2, 3, 30), (3, 2, 40), (1, 2, 50)], // Herlihy-multi
        vec![(0, 1, 10), (1, 2, 20), (2, 0, 30)], // Herlihy
    ];
    let asset_params = (0..5).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
    let mut s = concurrent_custom_swaps(
        &graphs,
        asset_params,
        vec![ChainParams::fast("witness", 1_000)],
        1_000,
    );
    let ac3wn = Ac3wn::new(protocol_cfg.clone());
    let multi = HerlihyMulti::new(protocol_cfg.clone());
    let single = Herlihy::new(protocol_cfg);
    let machines: Vec<(SwapId, Box<dyn SwapMachine>)> = vec![
        (s.swaps[0].id, Box::new(ac3wn.machine(s.swaps[0].graph.clone(), s.swaps[0].witness))),
        (s.swaps[1].id, Box::new(multi.machine(s.swaps[1].graph.clone()).expect("supported"))),
        (s.swaps[2].id, Box::new(single.machine(s.swaps[2].graph.clone()).expect("supported"))),
    ];
    let batch = Scheduler::default().run(&mut s.world, &mut s.participants, machines);
    assert_eq!(batch.failed(), 0, "mixed complex-graph batch must not error");
    assert!(batch.all_atomic(), "mixed complex-graph batch must stay atomic");
    let mixed: Vec<Vec<String>> = batch
        .reports()
        .map(|(id, r)| {
            vec![
                format!("{id}"),
                r.protocol.to_string(),
                format!("{}", r.verdict()),
                f2(r.latency_in_deltas()),
            ]
        })
        .collect();
    print_table(
        "Mixed-protocol scheduler batch (shared chains, one witness chain)",
        &["swap", "protocol", "verdict", "latency (Δ)"],
        &mixed,
    );
}
