//! The `SwapVm`: the contract virtual machine installed on every simulated
//! chain, executing the paper's contract algorithms.
//!
//! The VM's universe of contracts is a closed enum — HTLCs (the
//! Nolan/Herlihy baselines), centralized AC3TW contracts (Algorithm 2),
//! permissionless AC3WN contracts (Algorithm 4) and witness contracts
//! (Algorithm 3). Deploy and call payloads are encoded with
//! [`crate::codec`]; the chain stores contract state as opaque bytes and
//! the VM decodes/encodes around every call.

use crate::centralized::{CentralizedCall, CentralizedSpec, CentralizedState};
use crate::codec;
use crate::htlc::{HtlcCall, HtlcSpec, HtlcState};
use crate::multihtlc::{MultiHtlcCall, MultiHtlcSpec, MultiHtlcState};
use crate::permissionless::{PermissionlessCall, PermissionlessSpec, PermissionlessState};
use crate::witness::{WitnessCall, WitnessContractState, WitnessSpec};
use ac3_chain::{CallContext, CallOutcome, ContractVm, DeployContext, Payout, VmError};
use serde::{Deserialize, Serialize};

/// Deployment payload: which contract to instantiate and its constructor
/// arguments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractSpec {
    /// A hashlock/timelock contract (Nolan / Herlihy baselines).
    Htlc(HtlcSpec),
    /// A multi-hashlock/timelock contract (Herlihy multi-leader baseline).
    MultiHtlc(MultiHtlcSpec),
    /// An AC3TW contract guarded by the trusted witness's signatures.
    Centralized(CentralizedSpec),
    /// An AC3WN contract guarded by the witness contract's state.
    Permissionless(PermissionlessSpec),
    /// The witness-network coordination contract `SC_w`.
    Witness(WitnessSpec),
}

impl ContractSpec {
    /// Encode as a deployment payload.
    pub fn to_payload(&self) -> Vec<u8> {
        codec::encode(self)
    }
}

/// Function-call payload.
///
/// Variant payload sizes differ widely by design — calls are built once and
/// immediately serialized, so boxing the large variants would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractCall {
    /// A call on an HTLC.
    Htlc(HtlcCall),
    /// A call on a multi-hashlock HTLC.
    MultiHtlc(MultiHtlcCall),
    /// A call on a centralized swap contract.
    Centralized(CentralizedCall),
    /// A call on a permissionless swap contract.
    Permissionless(PermissionlessCall),
    /// A call on the witness contract.
    Witness(WitnessCall),
}

impl ContractCall {
    /// Encode as a call payload.
    pub fn to_payload(&self) -> Vec<u8> {
        codec::encode(self)
    }
}

/// Persisted contract state (the VM's view of one deployed contract).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractState {
    /// An HTLC.
    Htlc(HtlcState),
    /// A multi-hashlock HTLC.
    MultiHtlc(MultiHtlcState),
    /// A centralized swap contract.
    Centralized(CentralizedState),
    /// A permissionless swap contract.
    Permissionless(PermissionlessState),
    /// The witness contract.
    Witness(WitnessContractState),
}

impl ContractState {
    /// Decode persisted state bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, VmError> {
        codec::decode(bytes)
    }

    /// Encode for persistence.
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::encode(self)
    }

    /// The short state tag ("P", "RD", "RF", "RDauth", "RFauth").
    pub fn tag(&self) -> String {
        match self {
            ContractState::Htlc(s) => s.core.phase.tag().to_string(),
            ContractState::MultiHtlc(s) => s.core.phase.tag().to_string(),
            ContractState::Centralized(s) => s.core.phase.tag().to_string(),
            ContractState::Permissionless(s) => s.core.phase.tag().to_string(),
            ContractState::Witness(s) => s.state_tag().to_string(),
        }
    }
}

/// The contract VM for the AC3WN reproduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwapVm;

impl SwapVm {
    /// Create the VM.
    pub fn new() -> Self {
        SwapVm
    }
}

impl ContractVm for SwapVm {
    fn deploy(&self, ctx: &DeployContext, payload: &[u8]) -> Result<Vec<u8>, VmError> {
        let spec: ContractSpec = codec::decode(payload)?;
        let state = match spec {
            ContractSpec::Htlc(spec) => {
                if ctx.value == 0 {
                    return Err(VmError::RequirementFailed(
                        "an atomic-swap contract must lock a non-zero asset".to_string(),
                    ));
                }
                ContractState::Htlc(HtlcState::publish(ctx.sender, ctx.value, &spec))
            }
            ContractSpec::MultiHtlc(spec) => {
                if ctx.value == 0 {
                    return Err(VmError::RequirementFailed(
                        "an atomic-swap contract must lock a non-zero asset".to_string(),
                    ));
                }
                ContractState::MultiHtlc(MultiHtlcState::publish(ctx.sender, ctx.value, &spec)?)
            }
            ContractSpec::Centralized(spec) => {
                if ctx.value == 0 {
                    return Err(VmError::RequirementFailed(
                        "an atomic-swap contract must lock a non-zero asset".to_string(),
                    ));
                }
                ContractState::Centralized(CentralizedState::publish(ctx.sender, ctx.value, &spec))
            }
            ContractSpec::Permissionless(spec) => {
                if ctx.value == 0 {
                    return Err(VmError::RequirementFailed(
                        "an atomic-swap contract must lock a non-zero asset".to_string(),
                    ));
                }
                ContractState::Permissionless(PermissionlessState::publish(
                    ctx.sender, ctx.value, &spec,
                ))
            }
            ContractSpec::Witness(spec) => {
                // The deployment must lock exactly the declared stake (zero
                // for the paper's unstaked base protocol), so the slashing
                // payout is always covered by the contract's locked value.
                if ctx.value != spec.stake {
                    return Err(VmError::RequirementFailed(format!(
                        "witness deployment locks {} but declares a stake of {}",
                        ctx.value, spec.stake
                    )));
                }
                ContractState::Witness(WitnessContractState::publish(spec)?)
            }
        };
        Ok(state.to_bytes())
    }

    fn call(
        &self,
        ctx: &CallContext,
        state: &[u8],
        payload: &[u8],
    ) -> Result<CallOutcome, VmError> {
        let state = ContractState::from_bytes(state)?;
        let call: ContractCall = codec::decode(payload)?;
        let (new_state, payouts, event): (ContractState, Vec<Payout>, String) = match (state, call)
        {
            (ContractState::Htlc(mut s), ContractCall::Htlc(call)) => match call {
                HtlcCall::Redeem { preimage } => {
                    let payout = s.redeem(ctx.sender, preimage)?;
                    (ContractState::Htlc(s), vec![payout], "htlc redeemed".to_string())
                }
                HtlcCall::Refund => {
                    let payout = s.refund(ctx.sender, ctx.now)?;
                    (ContractState::Htlc(s), vec![payout], "htlc refunded".to_string())
                }
            },
            (ContractState::MultiHtlc(mut s), ContractCall::MultiHtlc(call)) => match call {
                MultiHtlcCall::Redeem { preimages } => {
                    let payout = s.redeem(ctx.sender, preimages)?;
                    (ContractState::MultiHtlc(s), vec![payout], "multi-htlc redeemed".to_string())
                }
                MultiHtlcCall::Refund => {
                    let payout = s.refund(ctx.sender, ctx.now)?;
                    (ContractState::MultiHtlc(s), vec![payout], "multi-htlc refunded".to_string())
                }
            },
            (ContractState::Centralized(mut s), ContractCall::Centralized(call)) => match call {
                CentralizedCall::Redeem { signature } => {
                    let payout = s.redeem(&signature)?;
                    (ContractState::Centralized(s), vec![payout], "ac3tw redeemed".to_string())
                }
                CentralizedCall::Refund { signature } => {
                    let payout = s.refund(&signature)?;
                    (ContractState::Centralized(s), vec![payout], "ac3tw refunded".to_string())
                }
            },
            (ContractState::Permissionless(mut s), ContractCall::Permissionless(call)) => {
                match call {
                    PermissionlessCall::Redeem { evidence } => {
                        let payout = s.redeem(&evidence)?;
                        (
                            ContractState::Permissionless(s),
                            vec![payout],
                            "ac3wn redeemed".to_string(),
                        )
                    }
                    PermissionlessCall::Refund { evidence } => {
                        let payout = s.refund(&evidence)?;
                        (
                            ContractState::Permissionless(s),
                            vec![payout],
                            "ac3wn refunded".to_string(),
                        )
                    }
                }
            }
            (ContractState::Witness(mut s), ContractCall::Witness(call)) => match call {
                WitnessCall::AuthorizeRedeem { deployments } => {
                    s.authorize_redeem(&deployments, ctx.chain, ctx.contract)?;
                    (ContractState::Witness(s), vec![], "witness authorized redeem".to_string())
                }
                WitnessCall::AuthorizeRefund => {
                    s.authorize_refund()?;
                    (ContractState::Witness(s), vec![], "witness authorized refund".to_string())
                }
                WitnessCall::ReportEquivocation { proof } => {
                    let stake = s.report_equivocation(&proof)?;
                    (
                        ContractState::Witness(s),
                        vec![Payout { to: ctx.sender, amount: stake }],
                        "witness operator slashed".to_string(),
                    )
                }
            },
            (state, _) => {
                return Err(VmError::MalformedPayload(format!(
                    "call payload does not match contract kind ({})",
                    state.tag()
                )))
            }
        };
        Ok(CallOutcome { new_state: new_state.to_bytes(), payouts, events: vec![event] })
    }

    fn state_tag(&self, state: &[u8]) -> Option<String> {
        ContractState::from_bytes(state).ok().map(|s| s.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::{Address, ChainId, ContractId, Timestamp};
    use ac3_crypto::{Hash256, Hashlock, KeyPair};

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn deploy_ctx(sender: Address, value: u64) -> DeployContext {
        DeployContext {
            chain: ChainId(0),
            sender,
            value,
            contract: ContractId(Hash256::digest(b"sc")),
            height: 1,
            now: 0,
        }
    }

    fn call_ctx(sender: Address, now: Timestamp) -> CallContext {
        CallContext {
            chain: ChainId(0),
            sender,
            contract: ContractId(Hash256::digest(b"sc")),
            height: 2,
            now,
        }
    }

    fn htlc_spec(secret: &[u8], timelock: Timestamp) -> ContractSpec {
        ContractSpec::Htlc(HtlcSpec {
            recipient: addr(b"bob"),
            hashlock: Hashlock::from_secret(secret).lock,
            timelock,
        })
    }

    #[test]
    fn htlc_lifecycle_through_the_vm() {
        let vm = SwapVm::new();
        let alice = addr(b"alice");
        let bob = addr(b"bob");

        let state =
            vm.deploy(&deploy_ctx(alice, 100), &htlc_spec(b"s", 10_000).to_payload()).unwrap();
        assert_eq!(vm.state_tag(&state).unwrap(), "P");

        let call = ContractCall::Htlc(HtlcCall::Redeem { preimage: b"s".to_vec() });
        let outcome = vm.call(&call_ctx(bob, 5_000), &state, &call.to_payload()).unwrap();
        assert_eq!(vm.state_tag(&outcome.new_state).unwrap(), "RD");
        assert_eq!(outcome.payouts, vec![Payout { to: bob, amount: 100 }]);
        assert_eq!(outcome.events.len(), 1);
    }

    #[test]
    fn htlc_refund_respects_timelock_through_the_vm() {
        let vm = SwapVm::new();
        let alice = addr(b"alice");
        let state =
            vm.deploy(&deploy_ctx(alice, 50), &htlc_spec(b"s", 10_000).to_payload()).unwrap();
        let refund = ContractCall::Htlc(HtlcCall::Refund).to_payload();
        assert!(vm.call(&call_ctx(alice, 9_000), &state, &refund).is_err());
        let outcome = vm.call(&call_ctx(alice, 10_000), &state, &refund).unwrap();
        assert_eq!(vm.state_tag(&outcome.new_state).unwrap(), "RF");
        assert_eq!(outcome.payouts, vec![Payout { to: alice, amount: 50 }]);
    }

    #[test]
    fn zero_value_swap_contract_rejected() {
        let vm = SwapVm::new();
        let err = vm
            .deploy(&deploy_ctx(addr(b"alice"), 0), &htlc_spec(b"s", 1).to_payload())
            .unwrap_err();
        assert!(matches!(err, VmError::RequirementFailed(_)));
    }

    #[test]
    fn mismatched_call_kind_rejected() {
        let vm = SwapVm::new();
        let alice = addr(b"alice");
        let state =
            vm.deploy(&deploy_ctx(alice, 10), &htlc_spec(b"s", 1_000).to_payload()).unwrap();
        // A centralized call against an HTLC state is malformed.
        let trent = KeyPair::from_seed(b"trent");
        let call =
            ContractCall::Centralized(CentralizedCall::Refund { signature: trent.sign(b"x") });
        assert!(matches!(
            vm.call(&call_ctx(alice, 0), &state, &call.to_payload()).unwrap_err(),
            VmError::MalformedPayload(_)
        ));
    }

    #[test]
    fn garbage_payloads_rejected() {
        let vm = SwapVm::new();
        assert!(vm.deploy(&deploy_ctx(addr(b"a"), 1), b"junk").is_err());
        let state =
            vm.deploy(&deploy_ctx(addr(b"a"), 1), &htlc_spec(b"s", 1).to_payload()).unwrap();
        assert!(vm.call(&call_ctx(addr(b"a"), 0), &state, b"junk").is_err());
        assert_eq!(vm.state_tag(b"junk"), None);
    }

    #[test]
    fn centralized_lifecycle_through_the_vm() {
        use ac3_crypto::{SignatureLock, WitnessDecision};
        let vm = SwapVm::new();
        let alice = addr(b"alice");
        let trent = KeyPair::from_seed(b"trent");
        let graph = Hash256::digest(b"ms(D)");
        let spec = ContractSpec::Centralized(CentralizedSpec {
            recipient: addr(b"bob"),
            graph_digest: graph,
            witness_key: trent.public(),
        });
        let state = vm.deploy(&deploy_ctx(alice, 30), &spec.to_payload()).unwrap();
        assert_eq!(vm.state_tag(&state).unwrap(), "P");

        let sig = trent.sign(&SignatureLock::signed_message(&graph, WitnessDecision::Refund));
        let call = ContractCall::Centralized(CentralizedCall::Refund { signature: sig });
        let outcome = vm.call(&call_ctx(alice, 0), &state, &call.to_payload()).unwrap();
        assert_eq!(vm.state_tag(&outcome.new_state).unwrap(), "RF");
        assert_eq!(outcome.payouts, vec![Payout { to: alice, amount: 30 }]);
    }

    #[test]
    fn witness_contract_refund_path_through_the_vm() {
        use crate::evidence::{ChainAnchor, ExpectedContract};
        use ac3_chain::BlockHash;
        let vm = SwapVm::new();
        let alice = addr(b"alice");
        let spec = ContractSpec::Witness(WitnessSpec {
            participants: vec![alice, addr(b"bob")],
            graph_digest: Hash256::digest(b"ms(D)"),
            expected_contracts: vec![ExpectedContract {
                chain: ChainId(1),
                sender: alice,
                recipient: addr(b"bob"),
                amount: 10,
                anchor: ChainAnchor {
                    chain: ChainId(1),
                    hash: BlockHash::GENESIS_PARENT,
                    height: 0,
                },
                required_depth: 0,
            }],
            operator: None,
            stake: 0,
        });
        // The witness contract locks no value.
        let state = vm.deploy(&deploy_ctx(alice, 0), &spec.to_payload()).unwrap();
        assert_eq!(vm.state_tag(&state).unwrap(), "P");

        let call = ContractCall::Witness(WitnessCall::AuthorizeRefund);
        let outcome = vm.call(&call_ctx(alice, 0), &state, &call.to_payload()).unwrap();
        assert_eq!(vm.state_tag(&outcome.new_state).unwrap(), "RFauth");
        assert!(outcome.payouts.is_empty());

        // A second decision attempt fails: states are mutually exclusive.
        let redeem = ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: vec![] });
        assert!(vm.call(&call_ctx(alice, 0), &outcome.new_state, &redeem.to_payload()).is_err());
    }

    #[test]
    fn staked_witness_slash_through_the_vm() {
        use crate::evidence::{ChainAnchor, EquivocationProof, ExpectedContract, SignedDecision};
        use ac3_chain::BlockHash;
        use ac3_crypto::WitnessDecision;

        let vm = SwapVm::new();
        let alice = addr(b"alice");
        let watchdog = addr(b"watchdog");
        let operator = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let spec = ContractSpec::Witness(WitnessSpec {
            participants: vec![alice],
            graph_digest: digest,
            expected_contracts: vec![ExpectedContract {
                chain: ChainId(1),
                sender: alice,
                recipient: addr(b"bob"),
                amount: 10,
                anchor: ChainAnchor {
                    chain: ChainId(1),
                    hash: BlockHash::GENESIS_PARENT,
                    height: 0,
                },
                required_depth: 0,
            }],
            operator: Some(operator.public()),
            stake: 250,
        });

        // The locked value must match the declared stake exactly.
        assert!(vm.deploy(&deploy_ctx(alice, 0), &spec.to_payload()).is_err());
        assert!(vm.deploy(&deploy_ctx(alice, 500), &spec.to_payload()).is_err());
        let state = vm.deploy(&deploy_ctx(alice, 250), &spec.to_payload()).unwrap();

        let proof = EquivocationProof {
            first: SignedDecision::sign(&operator, digest, WitnessDecision::Redeem),
            second: SignedDecision::sign(&operator, digest, WitnessDecision::Refund),
        };
        let call = ContractCall::Witness(WitnessCall::ReportEquivocation { proof });
        let outcome = vm.call(&call_ctx(watchdog, 0), &state, &call.to_payload()).unwrap();
        assert_eq!(outcome.payouts, vec![Payout { to: watchdog, amount: 250 }]);
        assert_eq!(outcome.events, vec!["witness operator slashed".to_string()]);

        // A duplicate report against the new state fails: one slash only.
        assert!(vm.call(&call_ctx(alice, 0), &outcome.new_state, &call.to_payload()).is_err());
    }

    #[test]
    fn state_round_trip_via_bytes() {
        let vm = SwapVm::new();
        let state_bytes =
            vm.deploy(&deploy_ctx(addr(b"alice"), 10), &htlc_spec(b"s", 99).to_payload()).unwrap();
        let decoded = ContractState::from_bytes(&state_bytes).unwrap();
        assert_eq!(decoded.to_bytes(), state_bytes);
        assert_eq!(decoded.tag(), "P");
    }
}
