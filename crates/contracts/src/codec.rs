//! Payload and state (de)serialization for the contract VM.
//!
//! The chain layer treats contract payloads and states as opaque byte
//! strings; this module defines the canonical encoding the [`crate::runtime::SwapVm`]
//! uses for them. JSON via `serde_json` is deliberately chosen over a binary
//! format: encoding is deterministic for our types (struct field order),
//! human-readable in logs and test failures, and adds no unsafe code. The
//! encoding is versioned with a one-byte prefix so future formats can be
//! introduced without ambiguity.

use ac3_chain::VmError;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Version prefix for the current encoding.
const VERSION: u8 = 1;

/// Encode a payload or contract state.
pub fn encode<T: Serialize>(value: &T) -> Vec<u8> {
    let mut out = vec![VERSION];
    out.extend_from_slice(&serde_json::to_vec(value).expect("contract types always serialize"));
    out
}

/// Decode a payload or contract state, mapping failures to
/// [`VmError::MalformedPayload`] so the chain rejects the offending message.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, VmError> {
    match bytes.split_first() {
        Some((&VERSION, rest)) => serde_json::from_slice(rest)
            .map_err(|e| VmError::MalformedPayload(format!("decode error: {e}"))),
        Some((v, _)) => Err(VmError::MalformedPayload(format!("unknown encoding version {v}"))),
        None => Err(VmError::MalformedPayload("empty payload".to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        a: u64,
        b: String,
        c: Vec<u8>,
    }

    #[test]
    fn round_trip() {
        let s = Sample { a: 7, b: "swap".to_string(), c: vec![1, 2, 3] };
        let bytes = encode(&s);
        let back: Sample = decode(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(matches!(decode::<Sample>(&[]), Err(VmError::MalformedPayload(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode(&Sample { a: 1, b: String::new(), c: vec![] });
        bytes[0] = 9;
        assert!(matches!(decode::<Sample>(&bytes), Err(VmError::MalformedPayload(_))));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            decode::<Sample>(&[VERSION, 0xff, 0x00, 0x12]),
            Err(VmError::MalformedPayload(_))
        ));
    }

    #[test]
    fn encoding_is_deterministic() {
        let s = Sample { a: 42, b: "x".to_string(), c: vec![9] };
        assert_eq!(encode(&s), encode(&s));
    }
}
