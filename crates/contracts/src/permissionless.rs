//! The AC3WN asset contract (Algorithm 4): redemption and refund are guarded
//! by the *witness contract's state*, proven with self-contained cross-chain
//! evidence.
//!
//! At deployment the contract records a reference to the witness contract
//! `SC_w` (chain, contract id, minimum burial depth `d`) together with a
//! stable anchor header of the witness chain. `IsRedeemable` accepts
//! evidence that `SC_w` reached `RDauth` in a block buried under at least
//! `d` blocks; `IsRefundable` accepts the analogous `RFauth` evidence. The
//! depth requirement is the fork-safety rule of Section 4.2/6.3.

use crate::evidence::{ChainAnchor, WitnessStateEvidence};
use crate::swap::{SwapCore, SwapPhase};
use ac3_chain::{Address, Amount, ChainId, ContractId, Payout, VmError};
use ac3_crypto::{StateLock, WitnessState};
use serde::{Deserialize, Serialize};

/// Constructor payload for a permissionless (AC3WN) swap contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionlessSpec {
    /// The recipient `r`.
    pub recipient: Address,
    /// The chain hosting the witness contract.
    pub witness_chain: ChainId,
    /// The witness contract `SC_w`.
    pub witness_contract: ContractId,
    /// The minimum burial depth `d` of the witness decision.
    pub min_depth: u64,
    /// Stable anchor of the witness chain, stored at deployment, against
    /// which witness-state evidence is verified.
    pub witness_anchor: ChainAnchor,
}

/// Function-call payloads accepted by a permissionless swap contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PermissionlessCall {
    /// Redeem with evidence that `SC_w` is in `RDauth`.
    Redeem {
        /// The witness-state evidence.
        evidence: WitnessStateEvidence,
    },
    /// Refund with evidence that `SC_w` is in `RFauth`.
    Refund {
        /// The witness-state evidence.
        evidence: WitnessStateEvidence,
    },
}

/// The on-chain state of a permissionless swap contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionlessState {
    /// Shared template fields.
    pub core: SwapCore,
    /// The redemption commitment-scheme instance `(SC_w, d)` requiring
    /// `RDauth` (Algorithm 4, line 3).
    pub rd: StateLock,
    /// The refund commitment-scheme instance `(SC_w, d)` requiring
    /// `RFauth`.
    pub rf: StateLock,
    /// The witness contract reference.
    pub witness_contract: ContractId,
    /// Stable anchor of the witness chain.
    pub witness_anchor: ChainAnchor,
}

impl PermissionlessState {
    /// Deploy (Algorithm 4, lines 1–5).
    pub fn publish(sender: Address, amount: Amount, spec: &PermissionlessSpec) -> Self {
        PermissionlessState {
            core: SwapCore::publish(sender, spec.recipient, amount),
            rd: StateLock::new(
                spec.witness_chain.as_u32(),
                spec.witness_contract.hash(),
                WitnessState::RedeemAuthorized,
                spec.min_depth,
            ),
            rf: StateLock::new(
                spec.witness_chain.as_u32(),
                spec.witness_contract.hash(),
                WitnessState::RefundAuthorized,
                spec.min_depth,
            ),
            witness_contract: spec.witness_contract,
            witness_anchor: spec.witness_anchor,
        }
    }

    /// `IsRedeemable` (Algorithm 4, lines 6–11): the evidence must prove
    /// that `SC_w` reached `RDauth` at depth ≥ d.
    pub fn is_redeemable(&self, evidence: &WitnessStateEvidence) -> Result<(), VmError> {
        let state =
            evidence.verify(&self.witness_anchor, self.witness_contract, self.rd.min_depth)?;
        if state != WitnessState::RedeemAuthorized {
            return Err(VmError::RequirementFailed(format!(
                "witness contract is {state:?}, redemption requires RDauth"
            )));
        }
        Ok(())
    }

    /// `IsRefundable` (Algorithm 4, lines 12–17): the evidence must prove
    /// that `SC_w` reached `RFauth` at depth ≥ d.
    pub fn is_refundable(&self, evidence: &WitnessStateEvidence) -> Result<(), VmError> {
        let state =
            evidence.verify(&self.witness_anchor, self.witness_contract, self.rf.min_depth)?;
        if state != WitnessState::RefundAuthorized {
            return Err(VmError::RequirementFailed(format!(
                "witness contract is {state:?}, refund requires RFauth"
            )));
        }
        Ok(())
    }

    /// Execute a redeem call. Any participant may submit the evidence; the
    /// payout always goes to the recipient recorded at deployment.
    pub fn redeem(&mut self, evidence: &WitnessStateEvidence) -> Result<Payout, VmError> {
        let ok = self.is_redeemable(evidence).is_ok();
        // Surface the precise failure reason rather than a generic message.
        if !ok {
            self.is_redeemable(evidence)?;
        }
        self.core.redeem(ok)
    }

    /// Execute a refund call; the payout goes back to the sender.
    pub fn refund(&mut self, evidence: &WitnessStateEvidence) -> Result<Payout, VmError> {
        let ok = self.is_refundable(evidence).is_ok();
        if !ok {
            self.is_refundable(evidence)?;
        }
        self.core.refund(ok)
    }

    /// The contract phase.
    pub fn phase(&self) -> SwapPhase {
        self.core.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::BlockHash;
    use ac3_crypto::{Hash256, KeyPair};

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn sample_state() -> PermissionlessState {
        let spec = PermissionlessSpec {
            recipient: addr(b"bob"),
            witness_chain: ChainId(9),
            witness_contract: ContractId(Hash256::digest(b"scw")),
            min_depth: 6,
            witness_anchor: ChainAnchor {
                chain: ChainId(9),
                hash: BlockHash::GENESIS_PARENT,
                height: 0,
            },
        };
        PermissionlessState::publish(addr(b"alice"), 100, &spec)
    }

    #[test]
    fn publish_wires_both_locks_to_the_witness() {
        let s = sample_state();
        assert_eq!(s.phase(), SwapPhase::Published);
        assert_eq!(s.rd.witness_chain, 9);
        assert_eq!(s.rf.witness_chain, 9);
        assert_eq!(s.rd.required_state, WitnessState::RedeemAuthorized);
        assert_eq!(s.rf.required_state, WitnessState::RefundAuthorized);
        assert_eq!(s.rd.min_depth, 6);
        assert_eq!(s.rd.witness_contract, s.rf.witness_contract);
    }

    // End-to-end evidence-driven redeem/refund paths are exercised in the
    // runtime tests and in the ac3-core integration tests, where a real
    // witness chain produces the evidence. Here we cover the template
    // wiring and the negative path with structurally invalid evidence.

    #[test]
    fn redeem_with_garbage_evidence_fails_and_preserves_state() {
        let mut s = sample_state();
        let bogus = WitnessStateEvidence {
            claimed: WitnessState::RedeemAuthorized,
            inclusion: crate::evidence::TxInclusionEvidence {
                tx: ac3_chain::coinbase(addr(b"alice"), 1, 0),
                tx_height: 1,
                headers: vec![],
                proof: ac3_crypto::MerkleProof { leaf_index: 0, siblings: vec![] },
            },
        };
        assert!(s.redeem(&bogus).is_err());
        assert!(s.refund(&bogus).is_err());
        assert_eq!(s.phase(), SwapPhase::Published);
    }
}
