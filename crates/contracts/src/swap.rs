//! The atomic-swap smart-contract template (Algorithm 1 of the paper).
//!
//! Every asset-transferring contract in an AC2T — whatever commitment scheme
//! it uses — shares the same skeleton: a sender `s`, a recipient `r`, an
//! asset `a`, and a state that starts at `Published (P)` and moves exactly
//! once to either `Redeemed (RD)` (asset goes to `r`) or `Refunded (RF)`
//! (asset goes back to `s`). The concrete subclasses (Algorithms 2 and 4,
//! plus the HTLC baseline) differ only in how `IsRedeemable` /
//! `IsRefundable` are decided; they reuse [`SwapCore`] for everything else.

use ac3_chain::{Address, Amount, Payout, VmError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The state of an atomic-swap smart contract (Algorithm 1, line 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwapPhase {
    /// Published (`P`): deployed, asset locked, no decision yet.
    Published,
    /// Redeemed (`RD`): the asset was transferred to the recipient.
    Redeemed,
    /// Refunded (`RF`): the asset was returned to the sender.
    Refunded,
}

impl SwapPhase {
    /// The short tag used by cross-chain state queries and metrics.
    pub fn tag(&self) -> &'static str {
        match self {
            SwapPhase::Published => "P",
            SwapPhase::Redeemed => "RD",
            SwapPhase::Refunded => "RF",
        }
    }
}

impl fmt::Display for SwapPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.tag())
    }
}

/// The shared fields and transition logic of every atomic-swap contract
/// (Algorithm 1, lines 2–22).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapCore {
    /// The sender `s` (the participant who locked the asset).
    pub sender: Address,
    /// The recipient `r`.
    pub recipient: Address,
    /// The locked asset value `a`.
    pub amount: Amount,
    /// The contract state.
    pub phase: SwapPhase,
}

impl SwapCore {
    /// The constructor (Algorithm 1, lines 7–12): record sender, recipient
    /// and locked value, and set the state to `P`.
    pub fn publish(sender: Address, recipient: Address, amount: Amount) -> Self {
        SwapCore { sender, recipient, amount, phase: SwapPhase::Published }
    }

    /// The `redeem` transition (Algorithm 1, lines 13–17). The caller has
    /// already evaluated `IsRedeemable`; this enforces the `state == P`
    /// requirement, performs the transfer to the recipient and flips the
    /// state to `RD`.
    pub fn redeem(&mut self, redeemable: bool) -> Result<Payout, VmError> {
        if self.phase != SwapPhase::Published {
            return Err(VmError::RequirementFailed(format!(
                "redeem requires state P, contract is {}",
                self.phase
            )));
        }
        if !redeemable {
            return Err(VmError::RequirementFailed(
                "redemption commitment scheme secret is invalid".to_string(),
            ));
        }
        self.phase = SwapPhase::Redeemed;
        Ok(Payout { to: self.recipient, amount: self.amount })
    }

    /// The `refund` transition (Algorithm 1, lines 18–22): requires state
    /// `P` and a valid refund secret, returns the asset to the sender and
    /// flips the state to `RF`.
    pub fn refund(&mut self, refundable: bool) -> Result<Payout, VmError> {
        if self.phase != SwapPhase::Published {
            return Err(VmError::RequirementFailed(format!(
                "refund requires state P, contract is {}",
                self.phase
            )));
        }
        if !refundable {
            return Err(VmError::RequirementFailed(
                "refund commitment scheme secret is invalid".to_string(),
            ));
        }
        self.phase = SwapPhase::Refunded;
        Ok(Payout { to: self.sender, amount: self.amount })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn core() -> SwapCore {
        SwapCore::publish(addr(b"alice"), addr(b"bob"), 100)
    }

    #[test]
    fn publish_starts_in_p() {
        let c = core();
        assert_eq!(c.phase, SwapPhase::Published);
        assert_eq!(c.phase.tag(), "P");
    }

    #[test]
    fn redeem_pays_recipient_and_moves_to_rd() {
        let mut c = core();
        let payout = c.redeem(true).unwrap();
        assert_eq!(payout.to, addr(b"bob"));
        assert_eq!(payout.amount, 100);
        assert_eq!(c.phase, SwapPhase::Redeemed);
    }

    #[test]
    fn refund_pays_sender_and_moves_to_rf() {
        let mut c = core();
        let payout = c.refund(true).unwrap();
        assert_eq!(payout.to, addr(b"alice"));
        assert_eq!(payout.amount, 100);
        assert_eq!(c.phase, SwapPhase::Refunded);
    }

    #[test]
    fn invalid_secret_rejected_without_state_change() {
        let mut c = core();
        assert!(c.redeem(false).is_err());
        assert!(c.refund(false).is_err());
        assert_eq!(c.phase, SwapPhase::Published);
    }

    #[test]
    fn redeem_then_refund_impossible() {
        let mut c = core();
        c.redeem(true).unwrap();
        assert!(c.refund(true).is_err());
        assert!(c.redeem(true).is_err(), "double redeem also impossible");
        assert_eq!(c.phase, SwapPhase::Redeemed);
    }

    #[test]
    fn refund_then_redeem_impossible() {
        let mut c = core();
        c.refund(true).unwrap();
        assert!(c.redeem(true).is_err());
        assert_eq!(c.phase, SwapPhase::Refunded);
    }

    #[test]
    fn phase_tags_are_papers_names() {
        assert_eq!(SwapPhase::Published.to_string(), "P");
        assert_eq!(SwapPhase::Redeemed.to_string(), "RD");
        assert_eq!(SwapPhase::Refunded.to_string(), "RF");
    }
}
