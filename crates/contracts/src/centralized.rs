//! The AC3TW asset contract (Algorithm 2): redemption and refund are guarded
//! by the *trusted witness's* signatures.
//!
//! Both commitment-scheme instances are the pair `(ms(D), PK_T)`. The
//! redemption secret is Trent's signature over `(ms(D), RD)` and the refund
//! secret is Trent's signature over `(ms(D), RF)`. Trent's key/value store
//! (implemented in `ac3-core::ac3tw`) guarantees that at most one of the two
//! signatures is ever issued, which is what makes the scheme's two instances
//! mutually exclusive.

use crate::swap::{SwapCore, SwapPhase};
use ac3_chain::{Address, Amount, Payout, VmError};
use ac3_crypto::{CommitmentScheme, Hash256, PublicKey, Signature, SignatureLock, WitnessDecision};
use serde::{Deserialize, Serialize};

/// Constructor payload for a centralized (AC3TW) swap contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CentralizedSpec {
    /// The recipient `r`.
    pub recipient: Address,
    /// Digest of the multisigned AC2T graph `ms(D)`.
    pub graph_digest: Hash256,
    /// Trent's public key `PK_T`.
    pub witness_key: PublicKey,
}

/// Function-call payloads accepted by a centralized swap contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CentralizedCall {
    /// Redeem with Trent's signature over `(ms(D), RD)`.
    Redeem {
        /// Trent's redemption signature.
        signature: Signature,
    },
    /// Refund with Trent's signature over `(ms(D), RF)`.
    Refund {
        /// Trent's refund signature.
        signature: Signature,
    },
}

/// The on-chain state of a centralized swap contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CentralizedState {
    /// Shared template fields.
    pub core: SwapCore,
    /// The redemption commitment scheme instance (Algorithm 2, line 2).
    pub rd: SignatureLock,
    /// The refund commitment scheme instance (Algorithm 2, line 2).
    pub rf: SignatureLock,
}

impl CentralizedState {
    /// Deploy: both instances are `(ms(D), PK_T)`, differing only in the
    /// decision they attest to.
    pub fn publish(sender: Address, amount: Amount, spec: &CentralizedSpec) -> Self {
        CentralizedState {
            core: SwapCore::publish(sender, spec.recipient, amount),
            rd: SignatureLock::new(spec.graph_digest, spec.witness_key, WitnessDecision::Redeem),
            rf: SignatureLock::new(spec.graph_digest, spec.witness_key, WitnessDecision::Refund),
        }
    }

    /// `IsRedeemable` (Algorithm 2, lines 5–7): verify Trent's signature
    /// over `(ms(D), RD)`.
    pub fn is_redeemable(&self, signature: &Signature) -> bool {
        self.rd.verify(signature)
    }

    /// `IsRefundable` (Algorithm 2, lines 8–10): verify Trent's signature
    /// over `(ms(D), RF)`.
    pub fn is_refundable(&self, signature: &Signature) -> bool {
        self.rf.verify(signature)
    }

    /// Execute a redeem call. Anyone may submit it (the paper's AC3TW does
    /// not restrict who presents the witness signature), but the payout
    /// always goes to the recipient recorded at deployment.
    pub fn redeem(&mut self, signature: &Signature) -> Result<Payout, VmError> {
        let ok = self.is_redeemable(signature);
        self.core.redeem(ok)
    }

    /// Execute a refund call; the payout goes back to the sender.
    pub fn refund(&mut self, signature: &Signature) -> Result<Payout, VmError> {
        let ok = self.is_refundable(signature);
        self.core.refund(ok)
    }

    /// The contract phase.
    pub fn phase(&self) -> SwapPhase {
        self.core.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn setup() -> (CentralizedState, KeyPair, Hash256) {
        let trent = KeyPair::from_seed(b"trent");
        let graph = Hash256::digest(b"ms(D)");
        let spec = CentralizedSpec {
            recipient: addr(b"bob"),
            graph_digest: graph,
            witness_key: trent.public(),
        };
        (CentralizedState::publish(addr(b"alice"), 100, &spec), trent, graph)
    }

    fn decision_sig(trent: &KeyPair, graph: &Hash256, decision: WitnessDecision) -> Signature {
        trent.sign(&SignatureLock::signed_message(graph, decision))
    }

    #[test]
    fn redeem_with_trents_rd_signature() {
        let (mut sc, trent, graph) = setup();
        let sig = decision_sig(&trent, &graph, WitnessDecision::Redeem);
        let payout = sc.redeem(&sig).unwrap();
        assert_eq!(payout.to, addr(b"bob"));
        assert_eq!(sc.phase(), SwapPhase::Redeemed);
    }

    #[test]
    fn refund_with_trents_rf_signature() {
        let (mut sc, trent, graph) = setup();
        let sig = decision_sig(&trent, &graph, WitnessDecision::Refund);
        let payout = sc.refund(&sig).unwrap();
        assert_eq!(payout.to, addr(b"alice"));
        assert_eq!(sc.phase(), SwapPhase::Refunded);
    }

    #[test]
    fn rd_signature_cannot_refund_and_vice_versa() {
        let (mut sc, trent, graph) = setup();
        let rd = decision_sig(&trent, &graph, WitnessDecision::Redeem);
        let rf = decision_sig(&trent, &graph, WitnessDecision::Refund);
        assert!(sc.refund(&rd).is_err());
        assert!(sc.redeem(&rf).is_err());
        assert_eq!(sc.phase(), SwapPhase::Published);
    }

    #[test]
    fn forged_signature_rejected() {
        let (mut sc, _trent, graph) = setup();
        let mallory = KeyPair::from_seed(b"mallory");
        let sig = decision_sig(&mallory, &graph, WitnessDecision::Redeem);
        assert!(sc.redeem(&sig).is_err());
    }

    #[test]
    fn signature_for_other_graph_rejected() {
        let (mut sc, trent, _graph) = setup();
        let other = Hash256::digest(b"another swap");
        let sig = decision_sig(&trent, &other, WitnessDecision::Redeem);
        assert!(sc.redeem(&sig).is_err());
    }

    #[test]
    fn redeem_is_final() {
        let (mut sc, trent, graph) = setup();
        let rd = decision_sig(&trent, &graph, WitnessDecision::Redeem);
        let rf = decision_sig(&trent, &graph, WitnessDecision::Refund);
        sc.redeem(&rd).unwrap();
        assert!(sc.refund(&rf).is_err());
        assert!(sc.redeem(&rd).is_err());
    }
}
