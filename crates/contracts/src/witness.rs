//! The witness-network coordination contract `SC_w` (Algorithm 3).
//!
//! For every AC2T the participants deploy one witness contract on a
//! permissionless witness blockchain. The contract records the multisigned
//! transaction graph, starts in state `Published (P)` and accepts exactly
//! one of two transitions:
//!
//! * `AuthorizeRedeem` — only if evidence shows that *every* asset contract
//!   in the AC2T is deployed and correct (`VerifyContracts`); moves the
//!   state to `Redeem_Authorized (RDauth)`: the commit decision.
//! * `AuthorizeRefund` — only requires the state to still be `P`; moves the
//!   state to `Refund_Authorized (RFauth)`: the abort decision.
//!
//! No other transition exists, which is what makes the redemption and refund
//! commitment-scheme instances of the asset contracts mutually exclusive
//! (Lemma 5.1).

use crate::evidence::{verify_deployment, ExpectedContract, TxInclusionEvidence};
use ac3_chain::{Address, ChainId, ContractId, VmError};
use ac3_crypto::{Hash256, WitnessState};
use serde::{Deserialize, Serialize};

/// Constructor payload for the witness contract (Algorithm 3, lines 5–9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessSpec {
    /// Addresses (public keys) of all participants in the AC2T.
    pub participants: Vec<Address>,
    /// Digest of the multisigned graph `ms(D)`.
    pub graph_digest: Hash256,
    /// One expected asset contract per edge of the graph, in edge order.
    pub expected_contracts: Vec<ExpectedContract>,
}

/// Function-call payloads accepted by the witness contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WitnessCall {
    /// Request the commit decision, carrying deployment evidence for every
    /// edge of the AC2T (Algorithm 3, lines 10–13).
    AuthorizeRedeem {
        /// One evidence entry per expected contract, in the same order.
        deployments: Vec<TxInclusionEvidence>,
    },
    /// Request the abort decision (Algorithm 3, lines 14–17).
    AuthorizeRefund,
}

/// The on-chain state of the witness contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessContractState {
    /// The registered specification.
    pub spec: WitnessSpec,
    /// The coordination state (`P`, `RDauth` or `RFauth`).
    pub state: WitnessState,
}

impl WitnessContractState {
    /// Deploy: register the graph and start in `P`.
    pub fn publish(spec: WitnessSpec) -> Result<Self, VmError> {
        if spec.participants.is_empty() {
            return Err(VmError::RequirementFailed("no participants".to_string()));
        }
        if spec.expected_contracts.is_empty() {
            return Err(VmError::RequirementFailed("no contracts to coordinate".to_string()));
        }
        Ok(WitnessContractState { spec, state: WitnessState::Published })
    }

    /// `VerifyContracts` (Algorithm 3, lines 18–23): every expected contract
    /// must be matched by valid deployment evidence.
    pub fn verify_contracts(
        &self,
        deployments: &[TxInclusionEvidence],
        own_chain: ChainId,
        own_id: ContractId,
    ) -> Result<(), VmError> {
        if deployments.len() != self.spec.expected_contracts.len() {
            return Err(VmError::RequirementFailed(format!(
                "expected {} deployment proofs, got {}",
                self.spec.expected_contracts.len(),
                deployments.len()
            )));
        }
        for (expected, evidence) in self.spec.expected_contracts.iter().zip(deployments) {
            verify_deployment(expected, evidence, own_chain, own_id)?;
        }
        Ok(())
    }

    /// `AuthorizeRedeem` (Algorithm 3, lines 10–13): requires state `P` and
    /// `VerifyContracts(e)`; transitions to `RDauth`.
    pub fn authorize_redeem(
        &mut self,
        deployments: &[TxInclusionEvidence],
        own_chain: ChainId,
        own_id: ContractId,
    ) -> Result<(), VmError> {
        if self.state != WitnessState::Published {
            return Err(VmError::RequirementFailed(format!(
                "authorize_redeem requires state P, contract is {:?}",
                self.state
            )));
        }
        self.verify_contracts(deployments, own_chain, own_id)?;
        self.state = WitnessState::RedeemAuthorized;
        Ok(())
    }

    /// `AuthorizeRefund` (Algorithm 3, lines 14–17): requires state `P`;
    /// transitions to `RFauth`.
    pub fn authorize_refund(&mut self) -> Result<(), VmError> {
        if self.state != WitnessState::Published {
            return Err(VmError::RequirementFailed(format!(
                "authorize_refund requires state P, contract is {:?}",
                self.state
            )));
        }
        self.state = WitnessState::RefundAuthorized;
        Ok(())
    }

    /// The short state tag ("P", "RDauth", "RFauth") used in cross-chain
    /// queries and metrics.
    pub fn state_tag(&self) -> &'static str {
        match self.state {
            WitnessState::Published => "P",
            WitnessState::RedeemAuthorized => "RDauth",
            WitnessState::RefundAuthorized => "RFauth",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::ChainAnchor;
    use ac3_chain::BlockHash;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn spec() -> WitnessSpec {
        let anchor = ChainAnchor { chain: ChainId(1), hash: BlockHash::GENESIS_PARENT, height: 0 };
        WitnessSpec {
            participants: vec![addr(b"alice"), addr(b"bob")],
            graph_digest: Hash256::digest(b"ms(D)"),
            expected_contracts: vec![ExpectedContract {
                chain: ChainId(1),
                sender: addr(b"alice"),
                recipient: addr(b"bob"),
                amount: 10,
                anchor,
                required_depth: 0,
            }],
        }
    }

    #[test]
    fn publish_starts_in_p() {
        let sc = WitnessContractState::publish(spec()).unwrap();
        assert_eq!(sc.state, WitnessState::Published);
        assert_eq!(sc.state_tag(), "P");
    }

    #[test]
    fn empty_spec_rejected() {
        let mut s = spec();
        s.participants.clear();
        assert!(WitnessContractState::publish(s).is_err());
        let mut s = spec();
        s.expected_contracts.clear();
        assert!(WitnessContractState::publish(s).is_err());
    }

    #[test]
    fn authorize_refund_from_p_succeeds_once() {
        let mut sc = WitnessContractState::publish(spec()).unwrap();
        sc.authorize_refund().unwrap();
        assert_eq!(sc.state, WitnessState::RefundAuthorized);
        assert_eq!(sc.state_tag(), "RFauth");
        // No further transition is possible.
        assert!(sc.authorize_refund().is_err());
        assert!(sc.authorize_redeem(&[], ChainId(0), ContractId(Hash256::ZERO)).is_err());
    }

    #[test]
    fn authorize_redeem_requires_matching_evidence_count() {
        let mut sc = WitnessContractState::publish(spec()).unwrap();
        // Zero proofs for one expected contract: rejected, state unchanged.
        let err = sc.authorize_redeem(&[], ChainId(0), ContractId(Hash256::ZERO)).unwrap_err();
        assert!(matches!(err, VmError::RequirementFailed(_)));
        assert_eq!(sc.state, WitnessState::Published);
    }

    #[test]
    fn states_are_mutually_exclusive() {
        // Whatever sequence of calls is attempted, the contract never
        // reaches RDauth after RFauth or vice versa.
        let mut sc = WitnessContractState::publish(spec()).unwrap();
        sc.authorize_refund().unwrap();
        let before = sc.state;
        let _ = sc.authorize_redeem(&[], ChainId(0), ContractId(Hash256::ZERO));
        assert_eq!(sc.state, before);
    }
}
