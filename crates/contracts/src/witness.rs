//! The witness-network coordination contract `SC_w` (Algorithm 3).
//!
//! For every AC2T the participants deploy one witness contract on a
//! permissionless witness blockchain. The contract records the multisigned
//! transaction graph, starts in state `Published (P)` and accepts exactly
//! one of two transitions:
//!
//! * `AuthorizeRedeem` — only if evidence shows that *every* asset contract
//!   in the AC2T is deployed and correct (`VerifyContracts`); moves the
//!   state to `Redeem_Authorized (RDauth)`: the commit decision.
//! * `AuthorizeRefund` — only requires the state to still be `P`; moves the
//!   state to `Refund_Authorized (RFauth)`: the abort decision.
//!
//! No other transition exists, which is what makes the redemption and refund
//! commitment-scheme instances of the asset contracts mutually exclusive
//! (Lemma 5.1).

use crate::evidence::{
    verify_deployment, EquivocationProof, ExpectedContract, TxInclusionEvidence,
};
use ac3_chain::{Address, Amount, ChainId, ContractId, VmError};
use ac3_crypto::{Hash256, PublicKey, WitnessState};
use serde::{Deserialize, Serialize};

/// Constructor payload for the witness contract (Algorithm 3, lines 5–9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessSpec {
    /// Addresses (public keys) of all participants in the AC2T.
    pub participants: Vec<Address>,
    /// Digest of the multisigned graph `ms(D)`.
    pub graph_digest: Hash256,
    /// One expected asset contract per edge of the graph, in edge order.
    pub expected_contracts: Vec<ExpectedContract>,
    /// Off-chain attestation key of the witness-network operator. `None`
    /// means no Byzantine accountability layer: nothing to slash (the
    /// paper's base protocol, where the witness *is* the chain).
    pub operator: Option<PublicKey>,
    /// Stake locked at deployment and forfeited to whoever submits a valid
    /// [`EquivocationProof`] against the operator. Deployment must lock
    /// exactly this value.
    pub stake: Amount,
}

/// Function-call payloads accepted by the witness contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WitnessCall {
    /// Request the commit decision, carrying deployment evidence for every
    /// edge of the AC2T (Algorithm 3, lines 10–13).
    AuthorizeRedeem {
        /// One evidence entry per expected contract, in the same order.
        deployments: Vec<TxInclusionEvidence>,
    },
    /// Request the abort decision (Algorithm 3, lines 14–17).
    AuthorizeRefund,
    /// Report operator equivocation: two validly signed conflicting
    /// decisions over this contract's graph. Slashes the stake to the
    /// caller. Accepted at most once per contract.
    ReportEquivocation {
        /// The fraud proof.
        proof: EquivocationProof,
    },
}

/// The on-chain state of the witness contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessContractState {
    /// The registered specification.
    pub spec: WitnessSpec,
    /// The coordination state (`P`, `RDauth` or `RFauth`).
    pub state: WitnessState,
    /// Whether the operator's stake has already been slashed. Slashing is
    /// orthogonal to the coordination state: the decision (if any) stands,
    /// only the operator's bond is forfeited.
    pub slashed: bool,
}

impl WitnessContractState {
    /// Deploy: register the graph and start in `P`.
    pub fn publish(spec: WitnessSpec) -> Result<Self, VmError> {
        if spec.participants.is_empty() {
            return Err(VmError::RequirementFailed("no participants".to_string()));
        }
        if spec.expected_contracts.is_empty() {
            return Err(VmError::RequirementFailed("no contracts to coordinate".to_string()));
        }
        if spec.stake > 0 && spec.operator.is_none() {
            return Err(VmError::RequirementFailed(
                "a staked witness contract needs an operator key to hold accountable".to_string(),
            ));
        }
        Ok(WitnessContractState { spec, state: WitnessState::Published, slashed: false })
    }

    /// `VerifyContracts` (Algorithm 3, lines 18–23): every expected contract
    /// must be matched by valid deployment evidence.
    pub fn verify_contracts(
        &self,
        deployments: &[TxInclusionEvidence],
        own_chain: ChainId,
        own_id: ContractId,
    ) -> Result<(), VmError> {
        if deployments.len() != self.spec.expected_contracts.len() {
            return Err(VmError::RequirementFailed(format!(
                "expected {} deployment proofs, got {}",
                self.spec.expected_contracts.len(),
                deployments.len()
            )));
        }
        for (expected, evidence) in self.spec.expected_contracts.iter().zip(deployments) {
            verify_deployment(expected, evidence, own_chain, own_id)?;
        }
        Ok(())
    }

    /// `AuthorizeRedeem` (Algorithm 3, lines 10–13): requires state `P` and
    /// `VerifyContracts(e)`; transitions to `RDauth`.
    pub fn authorize_redeem(
        &mut self,
        deployments: &[TxInclusionEvidence],
        own_chain: ChainId,
        own_id: ContractId,
    ) -> Result<(), VmError> {
        if self.state != WitnessState::Published {
            return Err(VmError::RequirementFailed(format!(
                "authorize_redeem requires state P, contract is {:?}",
                self.state
            )));
        }
        self.verify_contracts(deployments, own_chain, own_id)?;
        self.state = WitnessState::RedeemAuthorized;
        Ok(())
    }

    /// `AuthorizeRefund` (Algorithm 3, lines 14–17): requires state `P`;
    /// transitions to `RFauth`.
    pub fn authorize_refund(&mut self) -> Result<(), VmError> {
        if self.state != WitnessState::Published {
            return Err(VmError::RequirementFailed(format!(
                "authorize_refund requires state P, contract is {:?}",
                self.state
            )));
        }
        self.state = WitnessState::RefundAuthorized;
        Ok(())
    }

    /// Slash the operator's stake on a verified [`EquivocationProof`]
    /// (DESIGN.md §12). Requires a registered operator, an unslashed bond,
    /// and a proof binding exactly this contract's operator and graph.
    /// Returns the forfeited stake, to be paid out to the reporter; exactly
    /// one report per contract can ever succeed.
    pub fn report_equivocation(&mut self, proof: &EquivocationProof) -> Result<Amount, VmError> {
        let Some(operator) = self.spec.operator else {
            return Err(VmError::RequirementFailed(
                "witness contract has no registered operator".to_string(),
            ));
        };
        if self.slashed {
            return Err(VmError::RequirementFailed("operator stake already slashed".to_string()));
        }
        if self.spec.stake == 0 {
            return Err(VmError::RequirementFailed("witness contract holds no stake".to_string()));
        }
        proof.verify(&operator, &self.spec.graph_digest)?;
        self.slashed = true;
        Ok(self.spec.stake)
    }

    /// The short state tag ("P", "RDauth", "RFauth") used in cross-chain
    /// queries and metrics.
    pub fn state_tag(&self) -> &'static str {
        match self.state {
            WitnessState::Published => "P",
            WitnessState::RedeemAuthorized => "RDauth",
            WitnessState::RefundAuthorized => "RFauth",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evidence::ChainAnchor;
    use ac3_chain::BlockHash;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn spec() -> WitnessSpec {
        let anchor = ChainAnchor { chain: ChainId(1), hash: BlockHash::GENESIS_PARENT, height: 0 };
        WitnessSpec {
            participants: vec![addr(b"alice"), addr(b"bob")],
            graph_digest: Hash256::digest(b"ms(D)"),
            expected_contracts: vec![ExpectedContract {
                chain: ChainId(1),
                sender: addr(b"alice"),
                recipient: addr(b"bob"),
                amount: 10,
                anchor,
                required_depth: 0,
            }],
            operator: None,
            stake: 0,
        }
    }

    fn staked_spec(operator: &KeyPair, stake: Amount) -> WitnessSpec {
        WitnessSpec { operator: Some(operator.public()), stake, ..spec() }
    }

    #[test]
    fn publish_starts_in_p() {
        let sc = WitnessContractState::publish(spec()).unwrap();
        assert_eq!(sc.state, WitnessState::Published);
        assert_eq!(sc.state_tag(), "P");
    }

    #[test]
    fn empty_spec_rejected() {
        let mut s = spec();
        s.participants.clear();
        assert!(WitnessContractState::publish(s).is_err());
        let mut s = spec();
        s.expected_contracts.clear();
        assert!(WitnessContractState::publish(s).is_err());
    }

    #[test]
    fn authorize_refund_from_p_succeeds_once() {
        let mut sc = WitnessContractState::publish(spec()).unwrap();
        sc.authorize_refund().unwrap();
        assert_eq!(sc.state, WitnessState::RefundAuthorized);
        assert_eq!(sc.state_tag(), "RFauth");
        // No further transition is possible.
        assert!(sc.authorize_refund().is_err());
        assert!(sc.authorize_redeem(&[], ChainId(0), ContractId(Hash256::ZERO)).is_err());
    }

    #[test]
    fn authorize_redeem_requires_matching_evidence_count() {
        let mut sc = WitnessContractState::publish(spec()).unwrap();
        // Zero proofs for one expected contract: rejected, state unchanged.
        let err = sc.authorize_redeem(&[], ChainId(0), ContractId(Hash256::ZERO)).unwrap_err();
        assert!(matches!(err, VmError::RequirementFailed(_)));
        assert_eq!(sc.state, WitnessState::Published);
    }

    #[test]
    fn states_are_mutually_exclusive() {
        // Whatever sequence of calls is attempted, the contract never
        // reaches RDauth after RFauth or vice versa.
        let mut sc = WitnessContractState::publish(spec()).unwrap();
        sc.authorize_refund().unwrap();
        let before = sc.state;
        let _ = sc.authorize_redeem(&[], ChainId(0), ContractId(Hash256::ZERO));
        assert_eq!(sc.state, before);
    }

    #[test]
    fn stake_without_operator_rejected_at_publish() {
        let s = WitnessSpec { stake: 100, ..spec() };
        assert!(WitnessContractState::publish(s).is_err());
    }

    #[test]
    fn equivocation_slashes_the_stake_exactly_once() {
        use crate::evidence::{EquivocationProof, SignedDecision};
        use ac3_crypto::WitnessDecision;

        let op = KeyPair::from_seed(b"operator");
        let mut sc = WitnessContractState::publish(staked_spec(&op, 500)).unwrap();
        let digest = sc.spec.graph_digest;
        let proof = EquivocationProof {
            first: SignedDecision::sign(&op, digest, WitnessDecision::Redeem),
            second: SignedDecision::sign(&op, digest, WitnessDecision::Refund),
        };
        assert_eq!(sc.report_equivocation(&proof).unwrap(), 500);
        assert!(sc.slashed);
        // The bond can only be taken once — a duplicate report fails.
        assert!(sc.report_equivocation(&proof).is_err());
        // Slashing does not consume the coordination state machine.
        sc.authorize_refund().unwrap();
    }

    #[test]
    fn slash_requires_operator_stake_and_a_binding_proof() {
        use crate::evidence::{EquivocationProof, SignedDecision};
        use ac3_crypto::WitnessDecision;

        let op = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let proof = EquivocationProof {
            first: SignedDecision::sign(&op, digest, WitnessDecision::Redeem),
            second: SignedDecision::sign(&op, digest, WitnessDecision::Refund),
        };

        // No operator registered: nothing to slash.
        let mut plain = WitnessContractState::publish(spec()).unwrap();
        assert!(plain.report_equivocation(&proof).is_err());

        // Operator registered but zero stake: nothing to pay out.
        let mut unstaked = WitnessContractState::publish(staked_spec(&op, 0)).unwrap();
        assert!(unstaked.report_equivocation(&proof).is_err());

        // A proof about some other operator's equivocation slashes nothing.
        let mallory = KeyPair::from_seed(b"mallory");
        let foreign = EquivocationProof {
            first: SignedDecision::sign(&mallory, digest, WitnessDecision::Redeem),
            second: SignedDecision::sign(&mallory, digest, WitnessDecision::Refund),
        };
        let mut staked = WitnessContractState::publish(staked_spec(&op, 500)).unwrap();
        assert!(staked.report_equivocation(&foreign).is_err());
        assert!(!staked.slashed);
    }
}
