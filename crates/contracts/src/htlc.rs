//! Hashed timelock contracts (HTLCs) — the building block of Nolan's and
//! Herlihy's atomic-swap protocols (Section 1 of the paper).
//!
//! An HTLC locks an asset behind two conditions:
//!
//! * **hashlock** — the recipient may redeem by presenting the preimage `s`
//!   of the published hash `h = H(s)`;
//! * **timelock** — once the timelock `t` expires, the sender may refund.
//!
//! The paper's critique of these protocols is precisely that the timelock
//! couples liveness to safety: if the rightful redeemer crashes past `t`,
//! the sender refunds and atomicity is violated. The simulation reproduces
//! that behaviour faithfully (experiment E6).

use crate::swap::{SwapCore, SwapPhase};
use ac3_chain::{Address, Amount, Payout, Timestamp, VmError};
use ac3_crypto::{CommitmentScheme, Hash256, Hashlock};
use serde::{Deserialize, Serialize};

/// Constructor payload for an HTLC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtlcSpec {
    /// The recipient allowed to redeem with the preimage.
    pub recipient: Address,
    /// The hashlock `h = H(s)`.
    pub hashlock: Hash256,
    /// The timelock: simulated time after which the sender may refund.
    pub timelock: Timestamp,
}

/// Function-call payloads accepted by an HTLC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HtlcCall {
    /// Redeem by revealing the hashlock preimage.
    Redeem {
        /// The claimed preimage `s`.
        preimage: Vec<u8>,
    },
    /// Refund after the timelock expired.
    Refund,
}

/// The on-chain state of an HTLC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtlcState {
    /// Shared template fields (sender, recipient, amount, phase).
    pub core: SwapCore,
    /// The hashlock.
    pub hashlock: Hash256,
    /// The timelock.
    pub timelock: Timestamp,
    /// The revealed preimage, if the contract has been redeemed. Crucial for
    /// Nolan/Herlihy: redeeming on one chain reveals `s` to the counterparty
    /// on the other chain.
    pub revealed_preimage: Option<Vec<u8>>,
}

impl HtlcState {
    /// Deploy (Algorithm 1 constructor specialised with a hashlock and a
    /// timelock).
    pub fn publish(sender: Address, amount: Amount, spec: &HtlcSpec) -> Self {
        HtlcState {
            core: SwapCore::publish(sender, spec.recipient, amount),
            hashlock: spec.hashlock,
            timelock: spec.timelock,
            revealed_preimage: None,
        }
    }

    /// `IsRedeemable`: the preimage must open the hashlock.
    pub fn is_redeemable(&self, preimage: &[u8]) -> bool {
        Hashlock::from_lock(self.hashlock).verify(&preimage.to_vec())
    }

    /// `IsRefundable`: the timelock must have expired.
    pub fn is_refundable(&self, now: Timestamp) -> bool {
        now >= self.timelock
    }

    /// Execute a redeem call from `caller` at simulated time `now`.
    ///
    /// Only the designated recipient may redeem (the paper's SC1 "transfer X
    /// bitcoins *to Bob* if Bob provides s").
    pub fn redeem(&mut self, caller: Address, preimage: Vec<u8>) -> Result<Payout, VmError> {
        if caller != self.core.recipient {
            return Err(VmError::Unauthorized(format!(
                "only the recipient may redeem, caller {caller} is not {}",
                self.core.recipient
            )));
        }
        let ok = self.is_redeemable(&preimage);
        let payout = self.core.redeem(ok)?;
        self.revealed_preimage = Some(preimage);
        Ok(payout)
    }

    /// Execute a refund call from `caller` at simulated time `now`.
    ///
    /// Only the original sender may refund, and only after the timelock.
    pub fn refund(&mut self, caller: Address, now: Timestamp) -> Result<Payout, VmError> {
        if caller != self.core.sender {
            return Err(VmError::Unauthorized(format!(
                "only the sender may refund, caller {caller} is not {}",
                self.core.sender
            )));
        }
        if !self.is_refundable(now) {
            return Err(VmError::RequirementFailed(format!(
                "timelock {} has not expired at time {now}",
                self.timelock
            )));
        }
        self.core.refund(true)
    }

    /// The contract phase.
    pub fn phase(&self) -> SwapPhase {
        self.core.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::KeyPair;
    use proptest::prelude::*;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn htlc(secret: &[u8], timelock: Timestamp) -> HtlcState {
        let spec = HtlcSpec {
            recipient: addr(b"bob"),
            hashlock: Hashlock::from_secret(secret).lock,
            timelock,
        };
        HtlcState::publish(addr(b"alice"), 100, &spec)
    }

    #[test]
    fn recipient_redeems_with_correct_preimage() {
        let mut c = htlc(b"secret", 10_000);
        let payout = c.redeem(addr(b"bob"), b"secret".to_vec()).unwrap();
        assert_eq!(payout.to, addr(b"bob"));
        assert_eq!(payout.amount, 100);
        assert_eq!(c.phase(), SwapPhase::Redeemed);
        assert_eq!(c.revealed_preimage.as_deref(), Some(b"secret".as_slice()));
    }

    #[test]
    fn wrong_preimage_rejected() {
        let mut c = htlc(b"secret", 10_000);
        assert!(c.redeem(addr(b"bob"), b"guess".to_vec()).is_err());
        assert_eq!(c.phase(), SwapPhase::Published);
        assert!(c.revealed_preimage.is_none());
    }

    #[test]
    fn only_recipient_may_redeem() {
        let mut c = htlc(b"secret", 10_000);
        assert!(matches!(
            c.redeem(addr(b"mallory"), b"secret".to_vec()).unwrap_err(),
            VmError::Unauthorized(_)
        ));
    }

    #[test]
    fn refund_only_after_timelock() {
        let mut c = htlc(b"secret", 10_000);
        assert!(c.refund(addr(b"alice"), 9_999).is_err());
        let payout = c.refund(addr(b"alice"), 10_000).unwrap();
        assert_eq!(payout.to, addr(b"alice"));
        assert_eq!(c.phase(), SwapPhase::Refunded);
    }

    #[test]
    fn only_sender_may_refund() {
        let mut c = htlc(b"secret", 10_000);
        assert!(matches!(c.refund(addr(b"bob"), 20_000).unwrap_err(), VmError::Unauthorized(_)));
    }

    #[test]
    fn refund_after_redeem_impossible_and_vice_versa() {
        let mut c = htlc(b"secret", 10_000);
        c.redeem(addr(b"bob"), b"secret".to_vec()).unwrap();
        assert!(c.refund(addr(b"alice"), 20_000).is_err());

        let mut c2 = htlc(b"secret", 10_000);
        c2.refund(addr(b"alice"), 20_000).unwrap();
        assert!(c2.redeem(addr(b"bob"), b"secret".to_vec()).is_err());
    }

    #[test]
    fn the_papers_crash_scenario_is_possible_with_htlcs() {
        // Bob learned the secret but crashed; Alice refunds after t1 even
        // though Bob was entitled to redeem — the atomicity violation the
        // paper opens with.
        let mut sc1 = htlc(b"alice-secret", 10_000);
        // Bob never calls redeem (crashed). Time passes the timelock.
        let payout = sc1.refund(addr(b"alice"), 10_001).unwrap();
        assert_eq!(payout.to, addr(b"alice"));
        // Bob's later attempt fails: he lost the asset.
        assert!(sc1.redeem(addr(b"bob"), b"alice-secret".to_vec()).is_err());
    }

    proptest! {
        #[test]
        fn prop_refundable_iff_past_timelock(timelock in 0u64..100_000, now in 0u64..200_000) {
            let c = htlc(b"s", timelock);
            prop_assert_eq!(c.is_refundable(now), now >= timelock);
        }

        #[test]
        fn prop_only_exact_preimage_redeems(secret in proptest::collection::vec(any::<u8>(), 1..32),
                                            guess in proptest::collection::vec(any::<u8>(), 1..32)) {
            let mut c = HtlcState::publish(
                addr(b"alice"),
                5,
                &HtlcSpec {
                    recipient: addr(b"bob"),
                    hashlock: Hashlock::from_secret(&secret).lock,
                    timelock: 1_000,
                },
            );
            let result = c.redeem(addr(b"bob"), guess.clone());
            prop_assert_eq!(result.is_ok(), guess == secret);
        }
    }
}
