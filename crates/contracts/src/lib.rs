//! # ac3-contracts
//!
//! The smart-contract layer of the AC3WN reproduction: Rust implementations
//! of the paper's Algorithms 1–4 plus the HTLC used by the Nolan/Herlihy
//! baselines, executed on simulated chains through the [`runtime::SwapVm`]
//! (which implements [`ac3_chain::ContractVm`]).
//!
//! | Paper | Module |
//! |---|---|
//! | Algorithm 1 — atomic swap smart contract template | [`swap`] |
//! | Algorithm 2 — smart contract for centralized AC3 (AC3TW) | [`centralized`] |
//! | Algorithm 3 — witness network smart contract `SC_w` | [`witness`] |
//! | Algorithm 4 — smart contract for permissionless AC3 (AC3WN) | [`permissionless`] |
//! | Nolan/Herlihy hashlock + timelock contracts | [`htlc`] |
//! | Herlihy multi-leader multi-hashlock contracts | [`multihtlc`] |
//! | Section 4.3 cross-chain evidence | [`evidence`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centralized;
pub mod codec;
pub mod evidence;
pub mod htlc;
pub mod multihtlc;
pub mod permissionless;
pub mod runtime;
pub mod swap;
pub mod witness;

pub use centralized::{CentralizedCall, CentralizedSpec, CentralizedState};
pub use evidence::{
    verify_deployment, ChainAnchor, EquivocationProof, ExpectedContract, SignedDecision,
    TxInclusionEvidence, WitnessStateEvidence,
};
pub use htlc::{HtlcCall, HtlcSpec, HtlcState};
pub use multihtlc::{MultiHtlcCall, MultiHtlcSpec, MultiHtlcState};
pub use permissionless::{PermissionlessCall, PermissionlessSpec, PermissionlessState};
pub use runtime::{ContractCall, ContractSpec, ContractState, SwapVm};
pub use swap::{SwapCore, SwapPhase};
pub use witness::{WitnessCall, WitnessContractState, WitnessSpec};
