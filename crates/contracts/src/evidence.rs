//! Cross-chain evidence payloads exchanged between contracts (Section 4.3).
//!
//! Two evidence shapes appear in the AC3WN protocol:
//!
//! * [`TxInclusionEvidence`] — "transaction T happened on chain C": the
//!   transaction itself, the headers linking a known stable anchor block to
//!   the current tip of C, and a Merkle proof of T's inclusion in one of
//!   those blocks, buried under at least `d` of them. Used by the witness
//!   contract to check that every asset contract in the AC2T was deployed
//!   (Algorithm 3's `VerifyContracts`).
//! * [`WitnessStateEvidence`] — "the witness contract `SC_w` reached state
//!   RDauth/RFauth at depth ≥ d": a [`TxInclusionEvidence`] whose included
//!   transaction is the `AuthorizeRedeem` / `AuthorizeRefund` call, plus the
//!   claimed resulting state. Used by the asset contracts' `IsRedeemable` /
//!   `IsRefundable` (Algorithm 4).
//!
//! Both are *self-contained*: a contract verifies them using only data it
//! stored at deployment time (the anchor), never by consulting another
//! chain — this is the paper's proposed in-contract validation technique.

use crate::codec;
use crate::runtime::{ContractCall, ContractSpec};
use crate::witness::WitnessCall;
use ac3_chain::light::verify_header_chain;
use ac3_chain::{
    Address, Amount, BlockHash, BlockHeader, ChainId, ContractId, Transaction, TxKind, VmError,
};
use ac3_crypto::{
    Hash256, KeyPair, MerkleProof, PublicKey, Signature, SignatureLock, WitnessDecision,
    WitnessState,
};
use serde::{Deserialize, Serialize};

/// A stable block of some chain, stored inside a validator contract at
/// deployment time ("a smart contract in the validator blockchain ... stores
/// the header of a stable block in the validated blockchain").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainAnchor {
    /// The validated chain.
    pub chain: ChainId,
    /// Hash of the stable block.
    pub hash: BlockHash,
    /// Height of the stable block.
    pub height: u64,
}

/// Self-contained proof that a transaction occurred on another chain and is
/// buried under a minimum number of blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxInclusionEvidence {
    /// The transaction of interest (its canonical bytes are the Merkle
    /// leaf, so the verifier recomputes them rather than trusting a hash).
    pub tx: Transaction,
    /// Height of the block containing the transaction.
    pub tx_height: u64,
    /// Headers following the anchor, oldest first, up to the validated
    /// chain's tip at evidence-construction time.
    pub headers: Vec<BlockHeader>,
    /// Merkle inclusion proof of the transaction in the block at
    /// `tx_height`.
    pub proof: MerkleProof,
}

impl TxInclusionEvidence {
    /// Verify against `anchor`, requiring the transaction's block to be
    /// buried under at least `min_depth` of the supplied headers.
    pub fn verify(&self, anchor: &ChainAnchor, min_depth: u64) -> Result<(), VmError> {
        if self.headers.is_empty() {
            return Err(VmError::RequirementFailed("evidence contains no headers".to_string()));
        }
        if self.headers[0].parent != anchor.hash {
            return Err(VmError::RequirementFailed(format!(
                "evidence does not extend the stored stable block {}",
                anchor.hash
            )));
        }
        verify_header_chain(anchor.chain, anchor.hash, anchor.height, &self.headers)
            .map_err(|e| VmError::RequirementFailed(format!("header chain invalid: {e}")))?;

        let first_height = self.headers[0].height;
        let idx =
            self.tx_height.checked_sub(first_height).ok_or_else(|| {
                VmError::RequirementFailed("tx height precedes evidence".to_string())
            })? as usize;
        let header = self.headers.get(idx).ok_or_else(|| {
            VmError::RequirementFailed("tx height beyond evidence headers".to_string())
        })?;
        if !self.proof.verify(&header.tx_root, &self.tx.canonical_bytes()) {
            return Err(VmError::RequirementFailed("inclusion proof invalid".to_string()));
        }
        if !self.tx.signature_valid() {
            return Err(VmError::RequirementFailed(
                "included transaction not authorised".to_string(),
            ));
        }
        let tip = self.headers.last().expect("non-empty").height;
        let depth = tip.saturating_sub(self.tx_height);
        if depth < min_depth {
            return Err(VmError::RequirementFailed(format!(
                "transaction buried under {depth} blocks, {min_depth} required"
            )));
        }
        Ok(())
    }

    /// The chain the evidence headers belong to (all headers share one
    /// chain id; validated by [`TxInclusionEvidence::verify`]).
    pub fn chain(&self) -> Option<ChainId> {
        self.headers.first().map(|h| h.chain)
    }
}

/// What the witness contract expects each asset contract's deployment to
/// look like — derived from one edge `e = (u, v)` of the AC2T graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpectedContract {
    /// The blockchain `e.BC` the asset contract must be deployed on.
    pub chain: ChainId,
    /// The source participant `u` (the contract's sender).
    pub sender: Address,
    /// The recipient participant `v`.
    pub recipient: Address,
    /// The asset value `e.a` that must be locked.
    pub amount: Amount,
    /// Stable anchor of `chain`, stored when the witness contract is
    /// deployed, against which deployment evidence is verified.
    pub anchor: ChainAnchor,
    /// Minimum burial depth the deployment must have before the witness
    /// accepts it.
    pub required_depth: u64,
}

/// Check that a single deployment evidence entry matches its expected
/// contract description (the per-edge check of `VerifyContracts`,
/// Algorithm 3 lines 18–23).
pub fn verify_deployment(
    expected: &ExpectedContract,
    evidence: &TxInclusionEvidence,
    witness_chain: ChainId,
    witness_contract: ContractId,
) -> Result<(), VmError> {
    evidence.verify(&expected.anchor, expected.required_depth)?;
    if evidence.chain() != Some(expected.chain) {
        return Err(VmError::RequirementFailed(format!(
            "evidence is for {:?}, expected {:?}",
            evidence.chain(),
            expected.chain
        )));
    }
    // The included transaction must be the deployment of a permissionless
    // swap contract matching the edge description.
    let TxKind::Deploy { locked_value, payload, .. } = &evidence.tx.kind else {
        return Err(VmError::RequirementFailed(
            "evidence tx is not a contract deployment".to_string(),
        ));
    };
    if evidence.tx.sender != Some(expected.sender) {
        return Err(VmError::RequirementFailed(
            "deployment sender does not match edge source".to_string(),
        ));
    }
    if *locked_value != expected.amount {
        return Err(VmError::RequirementFailed(format!(
            "locked value {locked_value} does not match edge asset {}",
            expected.amount
        )));
    }
    let spec: ContractSpec = codec::decode(payload)?;
    let ContractSpec::Permissionless(spec) = spec else {
        return Err(VmError::RequirementFailed(
            "deployed contract is not a permissionless swap contract".to_string(),
        ));
    };
    if spec.recipient != expected.recipient {
        return Err(VmError::RequirementFailed("recipient does not match edge target".to_string()));
    }
    if spec.witness_chain != witness_chain || spec.witness_contract != witness_contract {
        return Err(VmError::RequirementFailed(
            "contract is not conditioned on this witness contract".to_string(),
        ));
    }
    Ok(())
}

/// Self-contained proof of the witness contract's decision, submitted to an
/// asset contract's redeem or refund function (Algorithm 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessStateEvidence {
    /// The state the submitter claims `SC_w` reached.
    pub claimed: WitnessState,
    /// Inclusion evidence for the `AuthorizeRedeem` / `AuthorizeRefund`
    /// call transaction on the witness chain.
    pub inclusion: TxInclusionEvidence,
}

impl WitnessStateEvidence {
    /// Verify the evidence: the authorize call must be included on the
    /// witness chain, extend the stored anchor, be buried under `min_depth`
    /// blocks, target `witness_contract`, and its payload must match the
    /// claimed state.
    ///
    /// Because the witness contract only permits the transitions
    /// `P → RDauth` and `P → RFauth` (and miners never include failing
    /// calls), an included authorize call is proof of the resulting state.
    pub fn verify(
        &self,
        anchor: &ChainAnchor,
        witness_contract: ContractId,
        min_depth: u64,
    ) -> Result<WitnessState, VmError> {
        self.inclusion.verify(anchor, min_depth)?;
        let TxKind::Call { contract, payload } = &self.inclusion.tx.kind else {
            return Err(VmError::RequirementFailed(
                "evidence tx is not a contract call".to_string(),
            ));
        };
        if *contract != witness_contract {
            return Err(VmError::RequirementFailed(
                "evidence call targets a different witness contract".to_string(),
            ));
        }
        let call: ContractCall = codec::decode(payload)?;
        let actual = match call {
            ContractCall::Witness(WitnessCall::AuthorizeRedeem { .. }) => {
                WitnessState::RedeemAuthorized
            }
            ContractCall::Witness(WitnessCall::AuthorizeRefund) => WitnessState::RefundAuthorized,
            _ => {
                return Err(VmError::RequirementFailed(
                    "evidence call is not an authorize call".to_string(),
                ))
            }
        };
        if actual != self.claimed {
            return Err(VmError::RequirementFailed(format!(
                "claimed state {:?} does not match authorize call ({:?})",
                self.claimed, actual
            )));
        }
        Ok(actual)
    }
}

/// A witness-network operator's signed attestation of an AC2T decision —
/// the testimony object of the Byzantine fault model.
///
/// The message signed is exactly [`SignatureLock::signed_message`], the
/// same domain-separated payload an AC3TW trusted witness signs to release
/// a commitment, so one proof format covers both the centralized witness
/// and a witness-network operator attesting its network's decision
/// off-chain. The attestation is *self-incriminating by pairing*: two
/// valid [`SignedDecision`]s by the same key over the same graph with
/// different decisions form an [`EquivocationProof`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedDecision {
    /// The attesting operator's public key.
    pub witness: PublicKey,
    /// The multisigned-graph digest `ms(D)` the decision is about.
    pub graph_digest: Hash256,
    /// The attested decision.
    pub decision: WitnessDecision,
    /// Schnorr signature over [`SignatureLock::signed_message`].
    pub signature: Signature,
}

impl SignedDecision {
    /// Sign a decision with the operator's key.
    pub fn sign(operator: &KeyPair, graph_digest: Hash256, decision: WitnessDecision) -> Self {
        let msg = SignatureLock::signed_message(&graph_digest, decision);
        SignedDecision {
            witness: operator.public(),
            graph_digest,
            decision,
            signature: operator.sign(&msg),
        }
    }

    /// Verify the signature against the embedded key, digest and decision.
    pub fn verify(&self) -> Result<(), VmError> {
        let msg = SignatureLock::signed_message(&self.graph_digest, self.decision);
        if !self.witness.verifies(&msg, &self.signature) {
            return Err(VmError::RequirementFailed(
                "decision signature does not verify".to_string(),
            ));
        }
        Ok(())
    }

    /// Whether `other` contradicts this attestation: same key, same graph,
    /// opposite decision. (Signatures are checked separately by
    /// [`EquivocationProof::verify`].)
    pub fn conflicts_with(&self, other: &SignedDecision) -> bool {
        self.witness == other.witness
            && self.graph_digest == other.graph_digest
            && self.decision != other.decision
    }
}

/// Fraud proof of witness equivocation: two validly signed, conflicting
/// decisions by the same operator over the same graph. Submitted on-chain
/// via `WitnessCall::ReportEquivocation`, it forfeits the operator's stake
/// to the reporter (the slashing flow of DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquivocationProof {
    /// One signed decision.
    pub first: SignedDecision,
    /// The conflicting signed decision.
    pub second: SignedDecision,
}

impl EquivocationProof {
    /// Verify the proof against the contract's registered operator key and
    /// graph digest: both attestations must be validly signed by exactly
    /// that key over exactly that graph, and contradict each other.
    pub fn verify(&self, operator: &PublicKey, graph_digest: &Hash256) -> Result<(), VmError> {
        if self.first.witness != *operator || self.second.witness != *operator {
            return Err(VmError::RequirementFailed(
                "attestation key is not the registered operator".to_string(),
            ));
        }
        if self.first.graph_digest != *graph_digest || self.second.graph_digest != *graph_digest {
            return Err(VmError::RequirementFailed(
                "attestation is about a different graph".to_string(),
            ));
        }
        if !self.first.conflicts_with(&self.second) {
            return Err(VmError::RequirementFailed(
                "attestations do not contradict each other".to_string(),
            ));
        }
        self.first.verify()?;
        self.second.verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::{TxBuilder, TxOutput};
    use ac3_crypto::MerkleTree;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    /// Build a tiny fake header chain containing `tx` at height 1 with
    /// `extra` empty blocks above it, anchored at a synthetic genesis.
    fn fabricate_evidence(tx: Transaction, extra: u64) -> (ChainAnchor, TxInclusionEvidence) {
        let chain = ChainId(5);
        let anchor_header = BlockHeader {
            chain,
            parent: BlockHash::GENESIS_PARENT,
            tx_root: Hash256::ZERO,
            height: 0,
            timestamp: 0,
            target: Hash256::MAX,
            nonce: 0,
        };
        let anchor = ChainAnchor { chain, hash: anchor_header.hash(), height: 0 };

        let leaves = vec![tx.canonical_bytes()];
        let tree = MerkleTree::from_leaves(&leaves);
        let mut headers = vec![BlockHeader {
            chain,
            parent: anchor_header.hash(),
            tx_root: tree.root(),
            height: 1,
            timestamp: 1,
            target: Hash256::MAX,
            nonce: 1,
        }];
        for i in 0..extra {
            let prev = *headers.last().unwrap();
            headers.push(BlockHeader {
                chain,
                parent: prev.hash(),
                tx_root: Hash256::digest(&[i as u8]),
                height: prev.height + 1,
                timestamp: prev.timestamp + 1,
                target: Hash256::MAX,
                nonce: 0,
            });
        }
        let evidence =
            TxInclusionEvidence { tx, tx_height: 1, headers, proof: tree.prove(0).unwrap() };
        (anchor, evidence)
    }

    fn sample_transfer() -> Transaction {
        let mut b = TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        b.transfer(vec![], vec![TxOutput::new(addr(b"bob"), 5)], 1)
    }

    #[test]
    fn fabricated_inclusion_evidence_verifies() {
        let (anchor, ev) = fabricate_evidence(sample_transfer(), 6);
        ev.verify(&anchor, 6).unwrap();
        assert_eq!(ev.chain(), Some(ChainId(5)));
    }

    #[test]
    fn insufficient_depth_rejected() {
        let (anchor, ev) = fabricate_evidence(sample_transfer(), 3);
        assert!(ev.verify(&anchor, 6).is_err());
        ev.verify(&anchor, 3).unwrap();
    }

    #[test]
    fn wrong_anchor_rejected() {
        let (_, ev) = fabricate_evidence(sample_transfer(), 6);
        let bogus =
            ChainAnchor { chain: ChainId(5), hash: BlockHash(Hash256::digest(b"x")), height: 0 };
        assert!(ev.verify(&bogus, 0).is_err());
    }

    #[test]
    fn tampered_tx_rejected() {
        let (anchor, mut ev) = fabricate_evidence(sample_transfer(), 6);
        ev.tx.fee += 1; // breaks both the Merkle proof and the signature
        assert!(ev.verify(&anchor, 0).is_err());
    }

    #[test]
    fn broken_header_chain_rejected() {
        let (anchor, mut ev) = fabricate_evidence(sample_transfer(), 6);
        ev.headers.remove(3);
        assert!(ev.verify(&anchor, 0).is_err());
    }

    #[test]
    fn empty_headers_rejected() {
        let (anchor, mut ev) = fabricate_evidence(sample_transfer(), 2);
        ev.headers.clear();
        assert!(ev.verify(&anchor, 0).is_err());
    }

    #[test]
    fn signed_decision_round_trip() {
        let op = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let d = SignedDecision::sign(&op, digest, WitnessDecision::Redeem);
        d.verify().unwrap();
        // Tampering with any field breaks the signature.
        let mut forged = d;
        forged.decision = WitnessDecision::Refund;
        assert!(forged.verify().is_err());
        let mut forged = d;
        forged.graph_digest = Hash256::digest(b"other");
        assert!(forged.verify().is_err());
        let mut forged = d;
        forged.witness = KeyPair::from_seed(b"mallory").public();
        assert!(forged.verify().is_err());
    }

    #[test]
    fn conflicting_decisions_form_a_valid_equivocation_proof() {
        let op = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let rd = SignedDecision::sign(&op, digest, WitnessDecision::Redeem);
        let rf = SignedDecision::sign(&op, digest, WitnessDecision::Refund);
        assert!(rd.conflicts_with(&rf));
        EquivocationProof { first: rd, second: rf }.verify(&op.public(), &digest).unwrap();
        // Order does not matter.
        EquivocationProof { first: rf, second: rd }.verify(&op.public(), &digest).unwrap();
    }

    #[test]
    fn equivocation_proof_rejects_non_conflicts_and_wrong_bindings() {
        let op = KeyPair::from_seed(b"operator");
        let digest = Hash256::digest(b"ms(D)");
        let rd = SignedDecision::sign(&op, digest, WitnessDecision::Redeem);
        let rf = SignedDecision::sign(&op, digest, WitnessDecision::Refund);

        // Two copies of the same decision are not an equivocation.
        assert!(EquivocationProof { first: rd, second: rd }.verify(&op.public(), &digest).is_err());
        // A proof about a different graph digest does not slash this contract.
        assert!(EquivocationProof { first: rd, second: rf }
            .verify(&op.public(), &Hash256::digest(b"other"))
            .is_err());
        // A proof signed by a different key does not slash this operator.
        let mallory = KeyPair::from_seed(b"mallory");
        assert!(EquivocationProof { first: rd, second: rf }
            .verify(&mallory.public(), &digest)
            .is_err());
        // A forged (unsigned) conflict is rejected even though it "conflicts".
        let mut forged = rf;
        forged.signature = mallory.sign(b"junk");
        assert!(EquivocationProof { first: rd, second: forged }
            .verify(&op.public(), &digest)
            .is_err());
    }
}
