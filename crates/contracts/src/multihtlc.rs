//! Multi-hashlock timelock contracts — the building block of Herlihy's
//! *multi-leader* atomic-swap protocol (the variant reference \[16\] proposes
//! for cyclic graphs, mentioned in Section 5.3 of the paper).
//!
//! In the multi-leader protocol a *leader set* L (a feedback vertex set of
//! the AC2T graph) replaces the single swap leader. Every leader `l ∈ L`
//! generates its own secret `s_l`; every contract in the swap is locked
//! behind **all** of the leaders' hashlocks and can only be redeemed by
//! presenting a preimage for each of them. The timelock plays the same role
//! as in the single-leader protocol — and carries the same liveness/safety
//! coupling the paper criticises: a redeemer who misses the timelock loses
//! the asset to a refund.

use crate::swap::{SwapCore, SwapPhase};
use ac3_chain::{Address, Amount, Payout, Timestamp, VmError};
use ac3_crypto::{CommitmentScheme, Hash256, Hashlock};
use serde::{Deserialize, Serialize};

/// Constructor payload for a multi-hashlock HTLC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiHtlcSpec {
    /// The recipient allowed to redeem with the full preimage set.
    pub recipient: Address,
    /// One hashlock per swap leader, in the leaders' canonical order.
    pub hashlocks: Vec<Hash256>,
    /// The timelock: simulated time after which the sender may refund.
    pub timelock: Timestamp,
}

/// Function-call payloads accepted by a multi-hashlock HTLC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MultiHtlcCall {
    /// Redeem by revealing every hashlock's preimage, in lock order.
    Redeem {
        /// The claimed preimages, `preimages[i]` opening `hashlocks[i]`.
        preimages: Vec<Vec<u8>>,
    },
    /// Refund after the timelock expired.
    Refund,
}

/// The on-chain state of a multi-hashlock HTLC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiHtlcState {
    /// Shared template fields (sender, recipient, amount, phase).
    pub core: SwapCore,
    /// The hashlocks, all of which must be opened to redeem.
    pub hashlocks: Vec<Hash256>,
    /// The timelock.
    pub timelock: Timestamp,
    /// The revealed preimages, if the contract has been redeemed. As with
    /// the single-hashlock HTLC, redemption reveals every leader secret to
    /// the remaining participants.
    pub revealed_preimages: Option<Vec<Vec<u8>>>,
}

impl MultiHtlcState {
    /// Deploy (Algorithm 1 constructor specialised with a set of hashlocks
    /// and a timelock).
    pub fn publish(sender: Address, amount: Amount, spec: &MultiHtlcSpec) -> Result<Self, VmError> {
        if spec.hashlocks.is_empty() {
            return Err(VmError::RequirementFailed(
                "a multi-hashlock contract needs at least one hashlock".to_string(),
            ));
        }
        Ok(MultiHtlcState {
            core: SwapCore::publish(sender, spec.recipient, amount),
            hashlocks: spec.hashlocks.clone(),
            timelock: spec.timelock,
            revealed_preimages: None,
        })
    }

    /// `IsRedeemable`: every hashlock must be opened by its preimage.
    pub fn is_redeemable(&self, preimages: &[Vec<u8>]) -> bool {
        preimages.len() == self.hashlocks.len()
            && self
                .hashlocks
                .iter()
                .zip(preimages)
                .all(|(lock, preimage)| Hashlock::from_lock(*lock).verify(preimage))
    }

    /// `IsRefundable`: the timelock must have expired.
    pub fn is_refundable(&self, now: Timestamp) -> bool {
        now >= self.timelock
    }

    /// Execute a redeem call from `caller`.
    pub fn redeem(&mut self, caller: Address, preimages: Vec<Vec<u8>>) -> Result<Payout, VmError> {
        if caller != self.core.recipient {
            return Err(VmError::Unauthorized(format!(
                "only the recipient may redeem, caller {caller} is not {}",
                self.core.recipient
            )));
        }
        let ok = self.is_redeemable(&preimages);
        let payout = self.core.redeem(ok)?;
        self.revealed_preimages = Some(preimages);
        Ok(payout)
    }

    /// Execute a refund call from `caller` at simulated time `now`.
    pub fn refund(&mut self, caller: Address, now: Timestamp) -> Result<Payout, VmError> {
        if caller != self.core.sender {
            return Err(VmError::Unauthorized(format!(
                "only the sender may refund, caller {caller} is not {}",
                self.core.sender
            )));
        }
        if !self.is_refundable(now) {
            return Err(VmError::RequirementFailed(format!(
                "timelock {} has not expired at time {now}",
                self.timelock
            )));
        }
        self.core.refund(true)
    }

    /// The contract phase.
    pub fn phase(&self) -> SwapPhase {
        self.core.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::KeyPair;
    use proptest::prelude::*;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn locks(secrets: &[&[u8]]) -> Vec<Hash256> {
        secrets.iter().map(|s| Hashlock::from_secret(s).lock).collect()
    }

    fn contract(secrets: &[&[u8]], timelock: Timestamp) -> MultiHtlcState {
        MultiHtlcState::publish(
            addr(b"alice"),
            100,
            &MultiHtlcSpec { recipient: addr(b"bob"), hashlocks: locks(secrets), timelock },
        )
        .unwrap()
    }

    #[test]
    fn redeem_requires_every_preimage() {
        let mut c = contract(&[b"s1", b"s2", b"s3"], 10_000);
        // Missing one preimage fails.
        assert!(c.redeem(addr(b"bob"), vec![b"s1".to_vec(), b"s2".to_vec()]).is_err());
        // A wrong preimage fails.
        assert!(c
            .redeem(addr(b"bob"), vec![b"s1".to_vec(), b"oops".to_vec(), b"s3".to_vec()])
            .is_err());
        assert_eq!(c.phase(), SwapPhase::Published);
        // The full ordered set succeeds.
        let payout =
            c.redeem(addr(b"bob"), vec![b"s1".to_vec(), b"s2".to_vec(), b"s3".to_vec()]).unwrap();
        assert_eq!(payout.to, addr(b"bob"));
        assert_eq!(payout.amount, 100);
        assert_eq!(c.phase(), SwapPhase::Redeemed);
        assert_eq!(c.revealed_preimages.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn preimages_must_be_in_lock_order() {
        let mut c = contract(&[b"s1", b"s2"], 10_000);
        assert!(c.redeem(addr(b"bob"), vec![b"s2".to_vec(), b"s1".to_vec()]).is_err());
    }

    #[test]
    fn only_recipient_may_redeem_and_only_sender_may_refund() {
        let mut c = contract(&[b"s1"], 10_000);
        assert!(matches!(
            c.redeem(addr(b"mallory"), vec![b"s1".to_vec()]).unwrap_err(),
            VmError::Unauthorized(_)
        ));
        assert!(matches!(c.refund(addr(b"bob"), 20_000).unwrap_err(), VmError::Unauthorized(_)));
    }

    #[test]
    fn refund_only_after_timelock() {
        let mut c = contract(&[b"s1", b"s2"], 10_000);
        assert!(c.refund(addr(b"alice"), 9_999).is_err());
        let payout = c.refund(addr(b"alice"), 10_000).unwrap();
        assert_eq!(payout.to, addr(b"alice"));
        assert_eq!(c.phase(), SwapPhase::Refunded);
        // Redemption after refund is impossible (mutual exclusion).
        assert!(c.redeem(addr(b"bob"), vec![b"s1".to_vec(), b"s2".to_vec()]).is_err());
    }

    #[test]
    fn empty_hashlock_set_rejected_at_publish() {
        let err = MultiHtlcState::publish(
            addr(b"alice"),
            1,
            &MultiHtlcSpec { recipient: addr(b"bob"), hashlocks: vec![], timelock: 1 },
        )
        .unwrap_err();
        assert!(matches!(err, VmError::RequirementFailed(_)));
    }

    #[test]
    fn single_hashlock_degenerates_to_plain_htlc_behaviour() {
        let mut c = contract(&[b"only"], 5_000);
        assert!(c.is_redeemable(&[b"only".to_vec()]));
        assert!(!c.is_redeemable(&[b"nope".to_vec()]));
        c.redeem(addr(b"bob"), vec![b"only".to_vec()]).unwrap();
        assert_eq!(c.phase(), SwapPhase::Redeemed);
    }

    proptest! {
        #[test]
        fn prop_redeemable_iff_all_preimages_match(
            secrets in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..5),
            flip in proptest::option::of(0usize..5),
        ) {
            let refs: Vec<&[u8]> = secrets.iter().map(|s| s.as_slice()).collect();
            let c = contract(&refs, 1_000);
            let mut guess: Vec<Vec<u8>> = secrets.clone();
            if let Some(i) = flip {
                if i < guess.len() {
                    guess[i].push(0xFF); // corrupt one preimage
                }
            }
            let expect_ok = flip.is_none_or(|i| i >= secrets.len());
            prop_assert_eq!(c.is_redeemable(&guess), expect_ok);
        }

        #[test]
        fn prop_refundable_iff_past_timelock(timelock in 0u64..100_000, now in 0u64..200_000) {
            let c = contract(&[b"s"], timelock);
            prop_assert_eq!(c.is_refundable(now), now >= timelock);
        }
    }
}
