//! From-scratch Keccak-f\[1600\] sponge with the two 256-bit instantiations
//! that matter for the paper's chains:
//!
//! * **Keccak-256** (the pre-standard padding, `0x01`) — what Ethereum uses
//!   for addresses, transaction ids and its state trie. The paper's running
//!   example swaps bitcoin for ether, so the Ethereum-flavoured identity
//!   derivation ([`ethereum_address`]) is part of the substrate.
//! * **SHA3-256** (FIPS 202 padding, `0x06`) — included because the two are
//!   frequently confused and differ only in the domain-separation byte; the
//!   test vectors pin both down.
//!
//! Like the rest of `ac3-crypto`, the implementation favours clarity over
//! speed; the sponge processes one 136-byte rate block at a time.

use crate::hash::Hash256;

/// Number of rounds of Keccak-f[1600].
const ROUNDS: usize = 24;

/// Rate in bytes for a 256-bit capacity-512 sponge (1600 − 2·256 bits).
const RATE: usize = 136;

/// Round constants (iota step).
const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets (rho step), indexed `[x][y]`.
const ROTATIONS: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// One application of the Keccak-f[1600] permutation to the 5×5 lane state.
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for rc in RC.iter().take(ROUNDS) {
        // θ: column parities.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for (x, column) in state.iter_mut().enumerate() {
            for lane in column.iter_mut() {
                *lane ^= d[x];
            }
        }

        // ρ and π: rotate lanes and permute their positions.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(ROTATIONS[x][y]);
            }
        }

        // χ: non-linear mixing within rows.
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }

        // ι: break symmetry with the round constant.
        state[0][0] ^= *rc;
    }
}

/// The sponge: absorb `data` with the given domain-separation `pad` byte
/// and squeeze a 32-byte digest.
fn sponge_256(data: &[u8], pad: u8) -> [u8; 32] {
    let mut state = [[0u64; 5]; 5];

    // Absorb full rate blocks, then the padded final block.
    let mut block = [0u8; RATE];
    let mut offset = 0;
    while data.len() - offset >= RATE {
        absorb(&mut state, &data[offset..offset + RATE]);
        offset += RATE;
    }
    let remaining = &data[offset..];
    block[..remaining.len()].copy_from_slice(remaining);
    block[remaining.len()..].fill(0);
    block[remaining.len()] ^= pad;
    block[RATE - 1] ^= 0x80;
    absorb(&mut state, &block);

    // Squeeze: 32 bytes fit comfortably inside one rate block.
    let mut out = [0u8; 32];
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let x = i % 5;
        let y = i / 5;
        chunk.copy_from_slice(&state[x][y].to_le_bytes());
    }
    out
}

/// XOR one rate-sized block into the state and permute.
fn absorb(state: &mut [[u64; 5]; 5], block: &[u8]) {
    debug_assert_eq!(block.len(), RATE);
    for (i, lane) in block.chunks(8).enumerate() {
        let x = i % 5;
        let y = i / 5;
        state[x][y] ^= u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
    }
    keccak_f(state);
}

/// Keccak-256 with the original (pre-FIPS) `0x01` padding — the Ethereum
/// hash function.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    sponge_256(data, 0x01)
}

/// SHA3-256 (FIPS 202, `0x06` padding).
pub fn sha3_256(data: &[u8]) -> [u8; 32] {
    sponge_256(data, 0x06)
}

/// Keccak-256 as a [`Hash256`] value, for call sites that want the crate's
/// common hash type.
pub fn keccak256_hash(data: &[u8]) -> Hash256 {
    Hash256::from_bytes(keccak256(data))
}

/// An Ethereum-style address: the last 20 bytes of the Keccak-256 digest of
/// the (uncompressed) public-key bytes. Our simulated chains identify users
/// by raw public keys (Section 2.2), but applications that want to display
/// Ethereum-shaped identities — as in the paper's Bitcoin-for-ether running
/// example — can derive one with this helper.
pub fn ethereum_address(public_key_bytes: &[u8]) -> [u8; 20] {
    let digest = keccak256(public_key_bytes);
    let mut address = [0u8; 20];
    address.copy_from_slice(&digest[12..]);
    address
}

/// Hex-encode an Ethereum-style address with the conventional `0x` prefix.
pub fn ethereum_address_hex(public_key_bytes: &[u8]) -> String {
    let address = ethereum_address(public_key_bytes);
    let mut out = String::with_capacity(42);
    out.push_str("0x");
    for byte in address {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use proptest::prelude::*;

    fn hex32(bytes: &[u8; 32]) -> String {
        hex::encode(bytes)
    }

    #[test]
    fn keccak256_known_answer_vectors() {
        // The canonical pre-FIPS Keccak-256 vectors (as used by Ethereum).
        assert_eq!(
            hex32(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
        assert_eq!(
            hex32(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn sha3_256_known_answer_vectors() {
        // FIPS 202 test vectors.
        assert_eq!(
            hex32(&sha3_256(b"")),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
        assert_eq!(
            hex32(&sha3_256(b"abc")),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn keccak_and_sha3_differ_only_in_padding_domain() {
        // Same sponge, different domain byte ⇒ different digests for the
        // same message.
        assert_ne!(keccak256(b"ac3wn"), sha3_256(b"ac3wn"));
    }

    #[test]
    fn multi_block_messages_are_absorbed_correctly() {
        // A message longer than one 136-byte rate block exercises the
        // full-block absorption path; spot-check determinism and avalanche.
        let long = vec![0xabu8; 1_000];
        let d1 = keccak256(&long);
        let d2 = keccak256(&long);
        assert_eq!(d1, d2);
        let mut tweaked = long.clone();
        tweaked[999] ^= 1;
        assert_ne!(keccak256(&tweaked), d1);
    }

    #[test]
    fn rate_boundary_messages() {
        // Exactly one rate block, one byte less and one byte more — the
        // classic padding edge cases.
        for len in [RATE - 1, RATE, RATE + 1] {
            let msg = vec![0x5au8; len];
            let d = keccak256(&msg);
            assert_eq!(d, keccak256(&msg), "length {len} must be deterministic");
            assert_ne!(d, [0u8; 32]);
        }
    }

    #[test]
    fn ethereum_address_is_the_digest_tail() {
        let pk = b"some public key bytes";
        let digest = keccak256(pk);
        let address = ethereum_address(pk);
        assert_eq!(&address[..], &digest[12..]);
        let display = ethereum_address_hex(pk);
        assert!(display.starts_with("0x"));
        assert_eq!(display.len(), 42);
    }

    #[test]
    fn hash256_wrapper_matches_raw_digest() {
        assert_eq!(keccak256_hash(b"x").as_bytes(), &keccak256(b"x"));
    }

    proptest! {
        #[test]
        fn prop_digest_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 0..600)) {
            let d = keccak256(&data);
            prop_assert_eq!(d, keccak256(&data));
            // Appending a byte must change the digest (one-wayness smoke test).
            let mut extended = data.clone();
            extended.push(0x01);
            prop_assert_ne!(keccak256(&extended), d);
        }

        #[test]
        fn prop_keccak_never_equals_sha256(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            // Different constructions; equality would indicate a broken sponge.
            prop_assert_ne!(keccak256(&data), crate::sha256::sha256(&data));
        }
    }
}
