//! Commitment schemes (Section 3 of the paper).
//!
//! An atomic cross-chain commitment protocol equips every smart contract in
//! an AC2T with two *mutually exclusive* commitment-scheme instances: a
//! redemption instance and a refund instance. A contract's `redeem` function
//! only fires when the redemption secret is presented, `refund` only when the
//! refund secret is presented, and the protocol guarantees that at most one
//! of the two secrets can ever be produced.
//!
//! The paper instantiates the abstraction three ways, all implemented here:
//!
//! * [`Hashlock`] — `h = H(s)`, the classic construction used by Nolan's and
//!   Herlihy's protocols (and by our HTLC baseline contracts);
//! * [`SignatureLock`] — the AC3TW construction: the lock is the pair
//!   `(ms(D), PK_Trent)` and the secret is Trent's signature over
//!   `(ms(D), RD)` or `(ms(D), RF)`;
//! * [`StateLock`] — the AC3WN construction: the lock names the witness
//!   contract and a minimum burial depth `d`; the "secret" is evidence that
//!   the witness contract reached `RDauth` (or `RFauth`) in a block buried
//!   under at least `d` blocks. The evidence itself is chain data, so the
//!   full verification lives in `ac3-contracts::evidence`; this type captures
//!   the lock parameters and the pure state/depth predicate.

use crate::hash::Hash256;
use crate::schnorr::{PublicKey, Signature};
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// A commitment scheme: a lock that can be opened by exactly one secret.
pub trait CommitmentScheme {
    /// The type of the opening secret.
    type Secret;

    /// Does `secret` open this lock?
    fn verify(&self, secret: &Self::Secret) -> bool;
}

// ---------------------------------------------------------------------------
// Hashlock
// ---------------------------------------------------------------------------

/// A hashlock `h = H(s)`: the lock is the hash, the secret is the preimage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Hashlock {
    /// The published lock value `h`.
    pub lock: Hash256,
}

impl Hashlock {
    /// Create a hashlock from a secret preimage (the swap leader's step 1 in
    /// Nolan's protocol: "Alice creates a secret s and a hashlock h = H(s)").
    pub fn from_secret(secret: &[u8]) -> Self {
        Hashlock { lock: Self::commit(secret) }
    }

    /// Wrap an already-computed lock value.
    pub fn from_lock(lock: Hash256) -> Self {
        Hashlock { lock }
    }

    /// The commitment function `H(s)` (domain separated).
    pub fn commit(secret: &[u8]) -> Hash256 {
        let mut h = Sha256::new();
        h.update(b"ac3wn/hashlock/v1");
        h.update(secret);
        Hash256::from(h.finalize())
    }
}

impl CommitmentScheme for Hashlock {
    type Secret = Vec<u8>;

    fn verify(&self, secret: &Self::Secret) -> bool {
        Self::commit(secret) == self.lock
    }
}

// ---------------------------------------------------------------------------
// SignatureLock (AC3TW)
// ---------------------------------------------------------------------------

/// The decision a trusted-witness signature attests to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WitnessDecision {
    /// The AC2T is committed: all contracts may be redeemed.
    Redeem,
    /// The AC2T is aborted: all contracts may be refunded.
    Refund,
}

impl WitnessDecision {
    /// Canonical single-byte encoding used inside signed messages.
    pub fn tag(&self) -> u8 {
        match self {
            WitnessDecision::Redeem => 0x52, // 'R' for RD
            WitnessDecision::Refund => 0x46, // 'F' for RF
        }
    }
}

/// The AC3TW commitment scheme instance `(ms(D), PK_T)` for a particular
/// decision: the secret is Trent's signature over `(ms(D), decision)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignatureLock {
    /// Digest of the multisigned transaction graph `ms(D)`.
    pub graph_digest: Hash256,
    /// The trusted witness's public key `PK_T`.
    pub witness_key: PublicKey,
    /// Which decision this lock guards (redeem or refund).
    pub decision: WitnessDecision,
}

impl SignatureLock {
    /// Build the lock.
    pub fn new(graph_digest: Hash256, witness_key: PublicKey, decision: WitnessDecision) -> Self {
        SignatureLock { graph_digest, witness_key, decision }
    }

    /// The canonical message Trent signs: `(ms(D), decision)`.
    pub fn signed_message(graph_digest: &Hash256, decision: WitnessDecision) -> Vec<u8> {
        let mut msg = Vec::with_capacity(32 + 16 + 1);
        msg.extend_from_slice(b"ac3wn/ac3tw/decision/v1");
        msg.extend_from_slice(graph_digest.as_bytes());
        msg.push(decision.tag());
        msg
    }
}

impl CommitmentScheme for SignatureLock {
    type Secret = Signature;

    fn verify(&self, secret: &Self::Secret) -> bool {
        let msg = Self::signed_message(&self.graph_digest, self.decision);
        self.witness_key.verifies(&msg, secret)
    }
}

// ---------------------------------------------------------------------------
// StateLock (AC3WN)
// ---------------------------------------------------------------------------

/// The observable state of the witness contract `SC_w` (Algorithm 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WitnessState {
    /// Published: the AC2T graph is registered, no decision yet.
    Published,
    /// Redeem authorised — the commit decision.
    RedeemAuthorized,
    /// Refund authorised — the abort decision.
    RefundAuthorized,
}

/// The AC3WN commitment scheme instance: a reference to the witness contract
/// plus the minimum burial depth `d` at which its state may be trusted
/// (Algorithm 4, `this.rd = this.rf = (SC_w, d)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateLock {
    /// Identifier of the witness chain the contract lives on.
    pub witness_chain: u32,
    /// Identifier of the witness contract `SC_w` on that chain.
    pub witness_contract: Hash256,
    /// The state that opens this lock (`RDauth` for redeem, `RFauth` for
    /// refund).
    pub required_state: WitnessState,
    /// Minimum number of blocks the state-changing block must be buried
    /// under before it is accepted as evidence (fork safety, Section 6.3).
    pub min_depth: u64,
}

/// A claim about the witness contract extracted from submitted evidence;
/// the full chain-level validation of the claim lives in `ac3-contracts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedWitnessState {
    /// The state the evidence shows the witness contract to be in.
    pub state: WitnessState,
    /// How many blocks bury the block containing the state change.
    pub depth: u64,
}

impl StateLock {
    /// Build a state lock.
    pub fn new(
        witness_chain: u32,
        witness_contract: Hash256,
        required_state: WitnessState,
        min_depth: u64,
    ) -> Self {
        StateLock { witness_chain, witness_contract, required_state, min_depth }
    }
}

impl CommitmentScheme for StateLock {
    type Secret = ObservedWitnessState;

    fn verify(&self, secret: &Self::Secret) -> bool {
        secret.state == self.required_state && secret.depth >= self.min_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::KeyPair;
    use proptest::prelude::*;

    #[test]
    fn hashlock_opens_with_correct_secret_only() {
        let lock = Hashlock::from_secret(b"alice-secret");
        assert!(lock.verify(&b"alice-secret".to_vec()));
        assert!(!lock.verify(&b"bob-guess".to_vec()));
    }

    #[test]
    fn hashlock_from_lock_roundtrip() {
        let lock = Hashlock::from_secret(b"s");
        let copy = Hashlock::from_lock(lock.lock);
        assert!(copy.verify(&b"s".to_vec()));
    }

    #[test]
    fn signature_lock_accepts_trent_only() {
        let trent = KeyPair::from_seed(b"trent");
        let mallory = KeyPair::from_seed(b"mallory");
        let graph = Hash256::digest(b"ms(D)");

        let rd_lock = SignatureLock::new(graph, trent.public(), WitnessDecision::Redeem);
        let msg = SignatureLock::signed_message(&graph, WitnessDecision::Redeem);
        assert!(rd_lock.verify(&trent.sign(&msg)));
        assert!(!rd_lock.verify(&mallory.sign(&msg)));
    }

    #[test]
    fn signature_lock_decisions_are_mutually_exclusive() {
        let trent = KeyPair::from_seed(b"trent");
        let graph = Hash256::digest(b"ms(D)");
        let rd_lock = SignatureLock::new(graph, trent.public(), WitnessDecision::Redeem);
        let rf_lock = SignatureLock::new(graph, trent.public(), WitnessDecision::Refund);

        let rd_sig = trent.sign(&SignatureLock::signed_message(&graph, WitnessDecision::Redeem));
        let rf_sig = trent.sign(&SignatureLock::signed_message(&graph, WitnessDecision::Refund));

        assert!(rd_lock.verify(&rd_sig));
        assert!(!rd_lock.verify(&rf_sig));
        assert!(rf_lock.verify(&rf_sig));
        assert!(!rf_lock.verify(&rd_sig));
    }

    #[test]
    fn signature_lock_is_graph_specific() {
        let trent = KeyPair::from_seed(b"trent");
        let g1 = Hash256::digest(b"graph-1");
        let g2 = Hash256::digest(b"graph-2");
        let lock = SignatureLock::new(g1, trent.public(), WitnessDecision::Redeem);
        let sig_for_other =
            trent.sign(&SignatureLock::signed_message(&g2, WitnessDecision::Redeem));
        assert!(!lock.verify(&sig_for_other));
    }

    #[test]
    fn state_lock_requires_state_and_depth() {
        let lock = StateLock::new(0, Hash256::digest(b"scw"), WitnessState::RedeemAuthorized, 6);
        let good = ObservedWitnessState { state: WitnessState::RedeemAuthorized, depth: 6 };
        let shallow = ObservedWitnessState { state: WitnessState::RedeemAuthorized, depth: 5 };
        let wrong_state = ObservedWitnessState { state: WitnessState::RefundAuthorized, depth: 10 };
        assert!(lock.verify(&good));
        assert!(!lock.verify(&shallow));
        assert!(!lock.verify(&wrong_state));
    }

    #[test]
    fn witness_decision_tags_differ() {
        assert_ne!(WitnessDecision::Redeem.tag(), WitnessDecision::Refund.tag());
    }

    proptest! {
        #[test]
        fn prop_hashlock_rejects_non_preimages(secret in proptest::collection::vec(any::<u8>(), 0..64),
                                               other in proptest::collection::vec(any::<u8>(), 0..64)) {
            let lock = Hashlock::from_secret(&secret);
            prop_assert!(lock.verify(&secret));
            if other != secret {
                prop_assert!(!lock.verify(&other));
            }
        }

        #[test]
        fn prop_state_lock_depth_monotone(min_depth in 0u64..100, depth in 0u64..200) {
            let lock = StateLock::new(0, Hash256::ZERO, WitnessState::RedeemAuthorized, min_depth);
            let obs = ObservedWitnessState { state: WitnessState::RedeemAuthorized, depth };
            prop_assert_eq!(lock.verify(&obs), depth >= min_depth);
        }
    }
}
