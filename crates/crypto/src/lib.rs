//! # ac3-crypto
//!
//! Cryptographic substrate for the AC3WN reproduction ("Atomic Commitment
//! Across Blockchains", Zakhary et al., VLDB 2020).
//!
//! The protocols in the paper rely on a small set of cryptographic
//! primitives:
//!
//! * a one-way hash function, used for hashlocks (`h = H(s)`), block links,
//!   Merkle roots and transaction/contract identifiers — implemented from
//!   scratch as [`mod@sha256`], plus the Ethereum-flavoured [`keccak`]
//!   (Keccak-256 / SHA3-256 and Ethereum-style address derivation);
//! * digital signatures, used to authorise asset transfers, to build the
//!   graph multisignature `ms(D)` of Equation 1 and to implement the trusted
//!   witness secrets of the AC3TW protocol — implemented as Schnorr
//!   signatures over a small prime-order group in [`schnorr`];
//! * Merkle trees and inclusion proofs, the substrate for the light-client /
//!   SPV evidence of Section 4.3 — implemented in [`merkle`];
//! * commitment schemes (Section 3): the hashlock, the signature lock used by
//!   AC3TW and the witness-contract state lock used by AC3WN — implemented in
//!   [`commitment`];
//! * the order-independent graph multisignature `ms(D)` — implemented in
//!   [`multisig`].
//!
//! ## Security disclaimer
//!
//! The signature scheme uses a 61-bit prime-order group so that all modular
//! arithmetic fits in `u128` without an external big-integer dependency. It
//! is structurally a real Schnorr scheme (discrete-log based, deterministic
//! nonces, Fiat–Shamir challenge) but it is **not** cryptographically strong.
//! The protocols reproduced here only depend on the *semantics* of
//! `verify(pk, m, sign(sk, m)) == true` and on tampered messages failing
//! verification, which this scheme provides for honest-but-curious
//! simulation purposes. See DESIGN.md §1 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commitment;
pub mod hash;
pub mod hex;
pub mod keccak;
pub mod merkle;
pub mod multisig;
pub mod schnorr;
pub mod sha256;

pub use commitment::{
    CommitmentScheme, Hashlock, ObservedWitnessState, SignatureLock, StateLock, WitnessDecision,
    WitnessState,
};
pub use hash::Hash256;
pub use keccak::{ethereum_address, ethereum_address_hex, keccak256, sha3_256};
pub use merkle::{MerkleProof, MerkleTree};
pub use multisig::{GraphMultisig, MultisigError};
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature, SignatureError};
pub use sha256::{sha256, Sha256};

/// Convenience function: hash arbitrary bytes and return a [`Hash256`].
pub fn hash_bytes(data: &[u8]) -> Hash256 {
    Hash256::from(sha256(data))
}

/// Hash the concatenation of two hashes (used for Merkle interior nodes and
/// block links).
pub fn hash_pair(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    Hash256::from(h.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_bytes_matches_sha256() {
        assert_eq!(hash_bytes(b"abc").as_bytes(), &sha256(b"abc"));
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }
}
