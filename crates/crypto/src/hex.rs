//! Minimal hex encoding/decoding helpers (no external dependency).

/// Encode bytes as a lowercase hex string.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0x0f) as u32, 16).expect("nibble"));
    }
    out
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let chars: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(chars.chunks_exact(2).map(|pair| ((pair[0] << 4) | pair[1]) as u8).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decode_uppercase() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_rejects_odd_and_invalid() {
        assert!(decode("abc").is_none());
        assert!(decode("zz").is_none());
    }

    #[test]
    fn encode_empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
