//! The graph multisignature `ms(D)` (Equation 1 of the paper).
//!
//! Every participant of an AC2T signs the canonical encoding of the pair
//! `(D, t)` — the transaction graph and an agreement timestamp. The paper
//! notes that "the order of participant signatures in ms(D) is not
//! important": any complete set of signatures indicates unanimous agreement
//! on the graph. We therefore model `ms(D)` as an unordered map from public
//! key to signature over the same message, and verification requires one
//! valid signature from *every* expected participant.

use crate::hash::Hash256;
use crate::schnorr::{KeyPair, PublicKey, Signature};
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while assembling or verifying a graph multisignature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultisigError {
    /// A participant attempted to sign twice with conflicting signatures.
    ConflictingSignature(PublicKey),
    /// A presented signature does not verify for the signer's key.
    InvalidSignature(PublicKey),
    /// Verification failed because a required participant has not signed.
    MissingSigner(PublicKey),
    /// Verification was asked for an empty participant set.
    NoParticipants,
}

impl fmt::Display for MultisigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultisigError::ConflictingSignature(pk) => {
                write!(f, "conflicting signature from {pk:?}")
            }
            MultisigError::InvalidSignature(pk) => write!(f, "invalid signature from {pk:?}"),
            MultisigError::MissingSigner(pk) => write!(f, "missing signature from {pk:?}"),
            MultisigError::NoParticipants => write!(f, "no participants"),
        }
    }
}

impl std::error::Error for MultisigError {}

/// An (in-progress or complete) multisignature over a fixed message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphMultisig {
    /// The message every participant signs: the canonical encoding of
    /// `(D, t)` produced by `ac3-core::graph`.
    message: Vec<u8>,
    /// Collected signatures keyed by signer. `BTreeMap` keeps the digest
    /// deterministic regardless of insertion order.
    signatures: BTreeMap<PublicKey, Signature>,
}

impl GraphMultisig {
    /// Start collecting signatures over `message`.
    pub fn new(message: Vec<u8>) -> Self {
        GraphMultisig { message, signatures: BTreeMap::new() }
    }

    /// The signed message.
    pub fn message(&self) -> &[u8] {
        &self.message
    }

    /// Sign with `keypair` and record the signature.
    pub fn sign_with(&mut self, keypair: &KeyPair) -> Result<(), MultisigError> {
        let sig = keypair.sign(&self.message);
        self.add_signature(keypair.public(), sig)
    }

    /// Record an externally produced signature. The signature is checked
    /// immediately so a malformed contribution is rejected at the door.
    pub fn add_signature(
        &mut self,
        signer: PublicKey,
        sig: Signature,
    ) -> Result<(), MultisigError> {
        if !signer.verifies(&self.message, &sig) {
            return Err(MultisigError::InvalidSignature(signer));
        }
        if let Some(existing) = self.signatures.get(&signer) {
            if *existing != sig {
                return Err(MultisigError::ConflictingSignature(signer));
            }
            return Ok(());
        }
        self.signatures.insert(signer, sig);
        Ok(())
    }

    /// The participants that have signed so far.
    pub fn signers(&self) -> impl Iterator<Item = &PublicKey> {
        self.signatures.keys()
    }

    /// Number of collected signatures.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether no signatures have been collected yet.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Verify that every participant in `expected` has contributed a valid
    /// signature over the message (order-independent, per the paper).
    pub fn verify(&self, expected: &[PublicKey]) -> Result<(), MultisigError> {
        if expected.is_empty() {
            return Err(MultisigError::NoParticipants);
        }
        for pk in expected {
            match self.signatures.get(pk) {
                None => return Err(MultisigError::MissingSigner(*pk)),
                Some(sig) => {
                    if !pk.verifies(&self.message, sig) {
                        return Err(MultisigError::InvalidSignature(*pk));
                    }
                }
            }
        }
        Ok(())
    }

    /// Boolean convenience wrapper around [`GraphMultisig::verify`].
    pub fn is_complete_for(&self, expected: &[PublicKey]) -> bool {
        self.verify(expected).is_ok()
    }

    /// A digest committing to the message and every collected signature.
    /// This is the value registered with the witness (`ms(D)` used as a
    /// key in Trent's key/value store, or stored in `SC_w`).
    pub fn digest(&self) -> Hash256 {
        let mut h = Sha256::new();
        h.update(b"ac3wn/multisig/v1");
        h.update(&(self.message.len() as u64).to_be_bytes());
        h.update(&self.message);
        for (pk, sig) in &self.signatures {
            h.update(&pk.to_bytes());
            h.update(&sig.to_bytes());
        }
        Hash256::from(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<KeyPair> {
        (0..n).map(|i| KeyPair::from_seed(format!("p{i}").as_bytes())).collect()
    }

    #[test]
    fn complete_multisig_verifies() {
        let parts = keys(3);
        let expected: Vec<PublicKey> = parts.iter().map(|k| k.public()).collect();
        let mut ms = GraphMultisig::new(b"(D, t)".to_vec());
        for p in &parts {
            ms.sign_with(p).unwrap();
        }
        assert!(ms.verify(&expected).is_ok());
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn missing_signer_detected() {
        let parts = keys(3);
        let expected: Vec<PublicKey> = parts.iter().map(|k| k.public()).collect();
        let mut ms = GraphMultisig::new(b"(D, t)".to_vec());
        ms.sign_with(&parts[0]).unwrap();
        ms.sign_with(&parts[2]).unwrap();
        assert_eq!(
            ms.verify(&expected).unwrap_err(),
            MultisigError::MissingSigner(parts[1].public())
        );
        assert!(!ms.is_complete_for(&expected));
    }

    #[test]
    fn signature_over_wrong_message_rejected() {
        let alice = KeyPair::from_seed(b"alice");
        let mut ms = GraphMultisig::new(b"the real graph".to_vec());
        let sig = alice.sign(b"a different graph");
        assert_eq!(
            ms.add_signature(alice.public(), sig).unwrap_err(),
            MultisigError::InvalidSignature(alice.public())
        );
    }

    #[test]
    fn duplicate_identical_signature_is_idempotent() {
        let alice = KeyPair::from_seed(b"alice");
        let mut ms = GraphMultisig::new(b"(D, t)".to_vec());
        ms.sign_with(&alice).unwrap();
        ms.sign_with(&alice).unwrap();
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn order_independence_of_digest_and_verification() {
        let parts = keys(4);
        let expected: Vec<PublicKey> = parts.iter().map(|k| k.public()).collect();

        let mut forward = GraphMultisig::new(b"(D, t)".to_vec());
        for p in &parts {
            forward.sign_with(p).unwrap();
        }
        let mut backward = GraphMultisig::new(b"(D, t)".to_vec());
        for p in parts.iter().rev() {
            backward.sign_with(p).unwrap();
        }
        assert_eq!(forward.digest(), backward.digest());
        assert!(forward.verify(&expected).is_ok());
        assert!(backward.verify(&expected).is_ok());
    }

    #[test]
    fn digest_depends_on_message_and_signers() {
        let parts = keys(2);
        let mut a = GraphMultisig::new(b"graph-A".to_vec());
        let mut b = GraphMultisig::new(b"graph-B".to_vec());
        for p in &parts {
            a.sign_with(p).unwrap();
            b.sign_with(p).unwrap();
        }
        assert_ne!(a.digest(), b.digest());

        let mut partial = GraphMultisig::new(b"graph-A".to_vec());
        partial.sign_with(&parts[0]).unwrap();
        assert_ne!(a.digest(), partial.digest());
    }

    #[test]
    fn empty_participant_set_is_an_error() {
        let ms = GraphMultisig::new(b"(D, t)".to_vec());
        assert_eq!(ms.verify(&[]).unwrap_err(), MultisigError::NoParticipants);
        assert!(ms.is_empty());
    }

    #[test]
    fn extra_signers_do_not_invalidate() {
        // A signature from someone outside the expected set is harmless: the
        // paper only requires that all *participants* agreed.
        let parts = keys(2);
        let outsider = KeyPair::from_seed(b"outsider");
        let expected: Vec<PublicKey> = parts.iter().map(|k| k.public()).collect();
        let mut ms = GraphMultisig::new(b"(D, t)".to_vec());
        for p in &parts {
            ms.sign_with(p).unwrap();
        }
        ms.sign_with(&outsider).unwrap();
        assert!(ms.verify(&expected).is_ok());
    }

    proptest! {
        #[test]
        fn prop_verification_requires_all_participants(n in 1usize..8, missing in 0usize..8) {
            let parts = keys(n);
            let expected: Vec<PublicKey> = parts.iter().map(|k| k.public()).collect();
            let mut ms = GraphMultisig::new(b"(D, t)".to_vec());
            for (i, p) in parts.iter().enumerate() {
                if i != missing % n {
                    ms.sign_with(p).unwrap();
                }
            }
            // With one participant skipped, verification must fail; with all
            // present it must succeed.
            prop_assert!(ms.verify(&expected).is_err());
            ms.sign_with(&parts[missing % n]).unwrap();
            prop_assert!(ms.verify(&expected).is_ok());
        }
    }
}
