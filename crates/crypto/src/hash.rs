//! The 32-byte hash value type used throughout the workspace.

use crate::hex;
use crate::sha256::sha256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit hash value.
///
/// `Hash256` identifies blocks, transactions, contracts and commitment-scheme
/// locks. It is a thin, copyable wrapper around `[u8; 32]` with hex
/// formatting, ordering (big-endian numeric interpretation, used for
/// proof-of-work difficulty comparisons) and serde support.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Hash256([u8; 32]);

impl Hash256 {
    /// The all-zero hash, used as the parent of genesis blocks and as a
    /// sentinel "no hash" value.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// The all-ones hash: the largest possible value, i.e. the easiest
    /// possible proof-of-work target.
    pub const MAX: Hash256 = Hash256([0xff; 32]);

    /// Wrap raw bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }

    /// Hash arbitrary data with SHA-256.
    pub fn digest(data: &[u8]) -> Self {
        Hash256(sha256(data))
    }

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consume and return the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Hex representation (64 lowercase hex characters).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Parse a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return None;
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Some(Hash256(out))
    }

    /// Whether this hash is numerically (big-endian) below `target`.
    ///
    /// This is the proof-of-work acceptance test used by the simulated
    /// chains: a block is valid if `hash(header) <= target`.
    pub fn meets_target(&self, target: &Hash256) -> bool {
        self <= target
    }

    /// Count of leading zero bits; a convenient human-readable measure of
    /// proof-of-work difficulty.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut count = 0;
        for byte in self.0.iter() {
            if *byte == 0 {
                count += 8;
            } else {
                count += byte.leading_zeros();
                break;
            }
        }
        count
    }

    /// Truncate to the first 8 bytes interpreted as a big-endian `u64`.
    /// Useful for deriving deterministic pseudo-random values from hashes
    /// (e.g. simulated mining delays).
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    /// A short 8-hex-character prefix used in log messages and `Display`.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash256({})", self.to_hex())
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let h = Hash256::digest(b"round trip");
        let parsed = Hash256::from_hex(&h.to_hex()).expect("parse");
        assert_eq!(h, parsed);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(Hash256::from_hex("abc").is_none(), "too short");
        assert!(Hash256::from_hex(&"zz".repeat(32)).is_none(), "non-hex");
        assert!(Hash256::from_hex(&"ab".repeat(33)).is_none(), "too long");
    }

    #[test]
    fn ordering_is_big_endian_numeric() {
        let mut small = [0u8; 32];
        small[31] = 1;
        let mut big = [0u8; 32];
        big[0] = 1;
        assert!(Hash256::from_bytes(small) < Hash256::from_bytes(big));
    }

    #[test]
    fn meets_target_boundary() {
        let t = Hash256::digest(b"target");
        assert!(t.meets_target(&t), "equal hash meets target");
        assert!(Hash256::ZERO.meets_target(&t));
        assert!(!Hash256::MAX.meets_target(&t));
    }

    #[test]
    fn leading_zero_bits_counts() {
        assert_eq!(Hash256::ZERO.leading_zero_bits(), 256);
        assert_eq!(Hash256::MAX.leading_zero_bits(), 0);
        let mut one = [0u8; 32];
        one[0] = 0x0f;
        assert_eq!(Hash256::from_bytes(one).leading_zero_bits(), 4);
    }

    #[test]
    fn display_is_short_prefix() {
        let h = Hash256::digest(b"display");
        assert_eq!(format!("{h}"), h.to_hex()[..8]);
    }

    #[test]
    fn to_u64_uses_first_eight_bytes() {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&0xdead_beef_cafe_f00du64.to_be_bytes());
        assert_eq!(Hash256::from_bytes(bytes).to_u64(), 0xdead_beef_cafe_f00d);
    }
}
