//! Merkle trees and inclusion proofs.
//!
//! Section 4.3 of the paper describes how miners of a *validator* blockchain
//! verify that a transaction occurred on a *validated* blockchain without
//! holding a copy of it: evidence consists of block headers (proof-of-work
//! links) plus proof that the transaction of interest is included in one of
//! those blocks. The inclusion half of that evidence is a Merkle proof
//! against the block header's transaction Merkle root — exactly what this
//! module provides.

use crate::hash::Hash256;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Domain-separation prefixes so that leaves can never be confused with
/// interior nodes (second-preimage hardening, as in RFC 6962).
const LEAF_PREFIX: &[u8] = b"\x00ac3wn/merkle/leaf";
const NODE_PREFIX: &[u8] = b"\x01ac3wn/merkle/node";

fn leaf_hash(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(LEAF_PREFIX);
    h.update(data);
    Hash256::from(h.finalize())
}

fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(NODE_PREFIX);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    Hash256::from(h.finalize())
}

/// A Merkle tree over an ordered list of byte strings (typically serialized
/// transactions of a block).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` holds the leaf hashes, the last level holds the root.
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Build a tree from serialized leaves. An empty leaf set produces the
    /// conventional "empty root" (hash of the empty string under the leaf
    /// domain), so that an empty block still has a well-defined root.
    pub fn from_leaves<I, T>(leaves: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let leaf_hashes: Vec<Hash256> = leaves.into_iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Build a tree from already-hashed leaves.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Hash256>) -> Self {
        let mut levels = Vec::new();
        if leaf_hashes.is_empty() {
            levels.push(vec![leaf_hash(b"")]);
            return MerkleTree { levels };
        }
        levels.push(leaf_hashes);
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                // Odd node: duplicate the last hash (Bitcoin-style padding).
                let right = pair.get(1).unwrap_or(left);
                next.push(node_hash(left, right));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root.
    pub fn root(&self) -> Hash256 {
        *self.levels.last().and_then(|l| l.first()).expect("tree always has a root")
    }

    /// Number of leaves in the tree (0 for the empty tree).
    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1
            && self.levels[0].len() == 1
            && self.levels[0][0] == leaf_hash(b"")
        {
            0
        } else {
            self.levels[0].len()
        }
    }

    /// Produce an inclusion proof for the leaf at `index`, or `None` if out
    /// of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            siblings.push(sibling);
            idx /= 2;
        }
        Some(MerkleProof { leaf_index: index, siblings })
    }
}

/// An inclusion proof: the sibling hashes from leaf to root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// The index of the proven leaf within the block.
    pub leaf_index: usize,
    /// Sibling hashes, bottom-up.
    pub siblings: Vec<Hash256>,
}

impl MerkleProof {
    /// Verify that `leaf_data` is included under `root` at the proof's index.
    pub fn verify(&self, root: &Hash256, leaf_data: &[u8]) -> bool {
        self.verify_hash(root, &leaf_hash(leaf_data))
    }

    /// Verify against an already-hashed leaf.
    pub fn verify_hash(&self, root: &Hash256, leaf: &Hash256) -> bool {
        let mut acc = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            acc = if idx.is_multiple_of(2) {
                node_hash(&acc, sibling)
            } else {
                node_hash(sibling, &acc)
            };
            idx /= 2;
        }
        acc == *root
    }

    /// The number of levels in the proof path.
    pub fn depth(&self) -> usize {
        self.siblings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves([b"only".as_slice()]);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        assert_eq!(tree.leaf_count(), 1);
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let a = MerkleTree::from_leaves(Vec::<Vec<u8>>::new());
        let b = MerkleTree::from_leaves(Vec::<Vec<u8>>::new());
        assert_eq!(a.root(), b.root());
        assert_eq!(a.leaf_count(), 0);
        assert!(a.prove(0).is_none());
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in 1..=17 {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), b"not-a-tx"));
        let other = MerkleTree::from_leaves(leaves(9));
        assert!(!proof.verify(&other.root(), &data[3]));
    }

    #[test]
    fn proof_fails_for_wrong_index() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let mut proof = tree.prove(3).unwrap();
        proof.leaf_index = 4;
        assert!(!proof.verify(&tree.root(), &data[3]));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::from_leaves(leaves(4));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn leaves_and_nodes_are_domain_separated() {
        // A tree whose single leaf equals an interior-node encoding of
        // another tree must not produce the same root.
        let data = leaves(2);
        let tree = MerkleTree::from_leaves(&data);
        let forged = MerkleTree::from_leaves([tree.root().as_bytes().as_slice()]);
        assert_ne!(tree.root(), forged.root());
    }

    #[test]
    fn order_matters() {
        let a = MerkleTree::from_leaves([b"a".as_slice(), b"b".as_slice()]);
        let b = MerkleTree::from_leaves([b"b".as_slice(), b"a".as_slice()]);
        assert_ne!(a.root(), b.root());
    }

    proptest! {
        #[test]
        fn prop_all_proofs_verify(n in 1usize..40, seed in any::<u64>()) {
            let data: Vec<Vec<u8>> = (0..n)
                .map(|i| format!("leaf-{seed}-{i}").into_bytes())
                .collect();
            let tree = MerkleTree::from_leaves(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                prop_assert!(proof.verify(&tree.root(), leaf));
            }
        }

        #[test]
        fn prop_cross_leaf_proofs_fail(n in 2usize..24) {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data);
            let proof = tree.prove(0).unwrap();
            // Proof for leaf 0 must not validate leaf 1.
            prop_assert!(!proof.verify(&tree.root(), &data[1]));
        }

        #[test]
        fn prop_root_changes_when_any_leaf_changes(n in 1usize..24, idx in 0usize..24) {
            let idx = idx % n;
            let mut data = leaves(n);
            let before = MerkleTree::from_leaves(&data).root();
            data[idx] = b"mutated".to_vec();
            let after = MerkleTree::from_leaves(&data).root();
            prop_assert_ne!(before, after);
        }
    }
}
