//! Schnorr signatures over a small prime-field group.
//!
//! ## Construction
//!
//! We work in the multiplicative group of `GF(p)` with the Mersenne prime
//! `p = 2^61 - 1` and the fixed base `g = 3`. A secret key is an exponent
//! `x`, the public key is `y = g^x mod p`. Signing is textbook Schnorr with
//! a deterministic (RFC-6979-style) nonce:
//!
//! ```text
//! k = H(sk || msg) mod n        (n = p - 1, retried if 0)
//! r = g^k mod p
//! e = H(r || pk || msg) mod n
//! s = k + e·x mod n
//! signature = (e, s)
//! ```
//!
//! Verification recomputes `r' = g^s · y^{-e}` and accepts iff
//! `H(r' || pk || msg) mod n == e`.
//!
//! The algebra is exactly that of real Schnorr signatures; only the group
//! size (61 bits) is toy-scale so that all arithmetic fits in `u128` without
//! a big-integer dependency. The AC3WN/AC3TW protocols rely solely on the
//! *functional* contract — signatures verify under the matching public key
//! and fail for tampered messages or wrong keys — which holds here.

use crate::hash::Hash256;
use crate::sha256::Sha256;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The group modulus: the Mersenne prime `2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;
/// The exponent modulus `p - 1`.
pub const ORDER: u64 = MODULUS - 1;
/// The fixed group base.
pub const GENERATOR: u64 = 3;

/// Errors returned by signature operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The secret key is zero or not reduced modulo the group order.
    InvalidSecretKey,
    /// The public key is not a valid group element.
    InvalidPublicKey,
    /// The signature failed verification.
    VerificationFailed,
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::InvalidSecretKey => write!(f, "invalid secret key"),
            SignatureError::InvalidPublicKey => write!(f, "invalid public key"),
            SignatureError::VerificationFailed => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// Modular multiplication in `GF(p)`.
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation by square-and-multiply.
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Reduce a hash to a nonzero exponent modulo [`ORDER`].
fn hash_to_exponent(h: &Hash256) -> u64 {
    let x = h.to_u64() % ORDER;
    if x == 0 {
        1
    } else {
        x
    }
}

/// A secret signing key (an exponent in `[1, ORDER)`).
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(u64);

impl SecretKey {
    /// Construct from a raw exponent. Returns an error if the exponent is
    /// zero or not reduced.
    pub fn from_scalar(x: u64) -> Result<Self, SignatureError> {
        if x == 0 || x >= ORDER {
            return Err(SignatureError::InvalidSecretKey);
        }
        Ok(SecretKey(x))
    }

    /// Derive a secret key deterministically from a seed label. Handy for
    /// reproducible simulations ("alice", "bob", ...).
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"ac3wn/secret-key/v1");
        h.update(seed);
        SecretKey(hash_to_exponent(&Hash256::from(h.finalize())))
    }

    /// Sample a fresh random secret key.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SecretKey(rng.gen_range(1..ORDER))
    }

    /// The raw exponent. Exposed for tests and serialization only.
    pub fn expose_scalar(&self) -> u64 {
        self.0
    }

    /// The corresponding public key `g^x mod p`.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(pow_mod(GENERATOR, self.0, MODULUS))
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the scalar.
        write!(f, "SecretKey(..)")
    }
}

/// A public verification key (a group element), also used as the on-chain
/// identity / address of end users (Section 2.2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PublicKey(u64);

impl PublicKey {
    /// Construct from a raw group element.
    pub fn from_element(y: u64) -> Result<Self, SignatureError> {
        if y == 0 || y >= MODULUS {
            return Err(SignatureError::InvalidPublicKey);
        }
        Ok(PublicKey(y))
    }

    /// The raw group element.
    pub fn element(&self) -> u64 {
        self.0
    }

    /// Canonical byte encoding used inside hashes and on-chain addresses.
    pub fn to_bytes(&self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// A deterministic 256-bit address derived from this key, used as the
    /// account identifier on simulated chains.
    pub fn address_hash(&self) -> Hash256 {
        let mut h = Sha256::new();
        h.update(b"ac3wn/address/v1");
        h.update(&self.to_bytes());
        Hash256::from(h.finalize())
    }

    /// Verify `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        if sig.e >= ORDER || sig.s >= ORDER {
            return Err(SignatureError::VerificationFailed);
        }
        // r' = g^s * y^(-e) = g^s * y^(ORDER - e) since y^ORDER == 1 is not
        // guaranteed for arbitrary y, we instead verify multiplicatively:
        // g^s == r' * y^e  <=>  r' = g^s * inverse(y^e).
        // Using Fermat: inverse(a) = a^(p-2) mod p.
        let y_e = pow_mod(self.0, sig.e, MODULUS);
        let y_e_inv = pow_mod(y_e, MODULUS - 2, MODULUS);
        let r_prime = mul_mod(pow_mod(GENERATOR, sig.s, MODULUS), y_e_inv, MODULUS);
        let e_prime = challenge(r_prime, self, msg);
        if e_prime == sig.e {
            Ok(())
        } else {
            Err(SignatureError::VerificationFailed)
        }
    }

    /// Boolean convenience wrapper around [`PublicKey::verify`].
    pub fn verifies(&self, msg: &[u8], sig: &Signature) -> bool {
        self.verify(msg, sig).is_ok()
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:016x})", self.0)
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &self.address_hash().short())
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Signature {
    /// The Fiat–Shamir challenge.
    pub e: u64,
    /// The response scalar.
    pub s: u64,
}

impl Signature {
    /// Canonical byte encoding (16 bytes, big endian `e || s`).
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.e.to_be_bytes());
        out[8..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Decode from the canonical 16-byte encoding.
    pub fn from_bytes(bytes: &[u8; 16]) -> Self {
        Signature {
            e: u64::from_be_bytes(bytes[..8].try_into().expect("8 bytes")),
            s: u64::from_be_bytes(bytes[8..].try_into().expect("8 bytes")),
        }
    }
}

/// Fiat–Shamir challenge `H(r || pk || msg) mod n`.
fn challenge(r: u64, pk: &PublicKey, msg: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(b"ac3wn/schnorr/challenge/v1");
    h.update(&r.to_be_bytes());
    h.update(&pk.to_bytes());
    h.update(msg);
    hash_to_exponent(&Hash256::from(h.finalize()))
}

/// A (secret, public) key pair.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Build a key pair from an existing secret key.
    pub fn from_secret(secret: SecretKey) -> Self {
        KeyPair { secret, public: secret.public_key() }
    }

    /// Derive a key pair deterministically from a seed label.
    pub fn from_seed(seed: &[u8]) -> Self {
        Self::from_secret(SecretKey::from_seed(seed))
    }

    /// Sample a fresh random key pair.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_secret(SecretKey::random(rng))
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The secret half.
    pub fn secret(&self) -> SecretKey {
        self.secret
    }

    /// Sign `msg` with a deterministic nonce.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        // Deterministic nonce: k = H(domain || sk || msg) mod n.
        let mut h = Sha256::new();
        h.update(b"ac3wn/schnorr/nonce/v1");
        h.update(&self.secret.0.to_be_bytes());
        h.update(msg);
        let k = hash_to_exponent(&Hash256::from(h.finalize()));

        let r = pow_mod(GENERATOR, k, MODULUS);
        let e = challenge(r, &self.public, msg);
        let s = (k as u128 + mul_mod(e, self.secret.0, ORDER) as u128) % ORDER as u128;
        Signature { e, s: s as u64 }
    }

    /// Sign and immediately verify (defensive helper used by simulation
    /// actors; panics only on internal inconsistency).
    pub fn sign_checked(&self, msg: &[u8]) -> Signature {
        let sig = self.sign(msg);
        debug_assert!(self.public.verifies(msg, &sig));
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::from_seed(b"alice");
        let msg = b"transfer X bitcoins to bob";
        let sig = kp.sign(msg);
        assert!(kp.public().verifies(msg, &sig));
    }

    #[test]
    fn tampered_message_fails() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = kp.sign(b"pay 10");
        assert!(!kp.public().verifies(b"pay 11", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let alice = KeyPair::from_seed(b"alice");
        let bob = KeyPair::from_seed(b"bob");
        let sig = alice.sign(b"msg");
        assert!(!bob.public().verifies(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = KeyPair::from_seed(b"alice");
        let msg = b"msg";
        let sig = kp.sign(msg);
        let bad_e = Signature { e: sig.e ^ 1, s: sig.s };
        let bad_s = Signature { e: sig.e, s: (sig.s + 1) % ORDER };
        assert!(!kp.public().verifies(msg, &bad_e));
        assert!(!kp.public().verifies(msg, &bad_s));
    }

    #[test]
    fn deterministic_signatures() {
        let kp = KeyPair::from_seed(b"alice");
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
        assert_ne!(kp.sign(b"m"), kp.sign(b"n"));
    }

    #[test]
    fn seeded_keys_are_stable_and_distinct() {
        let a1 = KeyPair::from_seed(b"alice");
        let a2 = KeyPair::from_seed(b"alice");
        let b = KeyPair::from_seed(b"bob");
        assert_eq!(a1.public(), a2.public());
        assert_ne!(a1.public(), b.public());
    }

    #[test]
    fn random_keys_sign_and_verify() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            let kp = KeyPair::random(&mut rng);
            let msg = b"random keypair message";
            assert!(kp.public().verifies(msg, &kp.sign(msg)));
        }
    }

    #[test]
    fn invalid_scalars_rejected() {
        assert_eq!(SecretKey::from_scalar(0).unwrap_err(), SignatureError::InvalidSecretKey);
        assert_eq!(SecretKey::from_scalar(ORDER).unwrap_err(), SignatureError::InvalidSecretKey);
        assert!(SecretKey::from_scalar(42).is_ok());
        assert_eq!(PublicKey::from_element(0).unwrap_err(), SignatureError::InvalidPublicKey);
        assert_eq!(PublicKey::from_element(MODULUS).unwrap_err(), SignatureError::InvalidPublicKey);
    }

    #[test]
    fn signature_byte_round_trip() {
        let kp = KeyPair::from_seed(b"codec");
        let sig = kp.sign(b"encode me");
        assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    #[test]
    fn out_of_range_signature_rejected_cleanly() {
        let kp = KeyPair::from_seed(b"alice");
        let sig = Signature { e: ORDER, s: ORDER };
        assert_eq!(
            kp.public().verify(b"msg", &sig).unwrap_err(),
            SignatureError::VerificationFailed
        );
    }

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1_000_000_007), 1024);
        assert_eq!(pow_mod(5, 0, 7), 1);
        // Fermat's little theorem sanity check with the group modulus.
        assert_eq!(pow_mod(GENERATOR, MODULUS - 1, MODULUS), 1);
    }

    #[test]
    fn address_hash_distinct_per_key() {
        let a = KeyPair::from_seed(b"alice").public().address_hash();
        let b = KeyPair::from_seed(b"bob").public().address_hash();
        assert_ne!(a, b);
    }
}
