//! The footprint-audit sanitizer: a pass-through [`ChainApi`] wrapper that
//! panics — loudly, with attribution — when a machine touches a chain or
//! signs with an actor outside its declared
//! [`MachineFootprint`](ChainApi)-equivalent scope.
//!
//! The parallel scheduler's entire correctness argument rests on declared
//! footprints being *conservative*: a machine that reaches beyond its
//! footprint aliases state another shard owns. Under the sharded path an
//! under-declared chain surfaces as a hard `UnknownChain` error, but the
//! serial reference path (`workers: 1`) hands every machine the whole
//! world, so the same bug passes silently — until someone bumps the worker
//! count. [`AuditApi`] closes that gap: enabled via the
//! `AC3_FOOTPRINT_AUDIT=1` environment variable (or
//! `Scheduler::with_footprint_audit` in `ac3-core`), it interposes on every
//! chain-addressed call and every [`ParticipantSet`] actor lookup and
//! panics with the machine id, its current phase, and the out-of-scope
//! chain or actor.
//!
//! **Determinism.** The wrapper holds no state of its own — no counters,
//! no RNG, no clocks — and forwards every call verbatim, so an audited run
//! that does not panic is bitwise identical to an unaudited one. The CI
//! determinism matrix runs an `AC3_FOOTPRINT_AUDIT=1` leg to pin exactly
//! that.
//!
//! [`ParticipantSet`]: crate::participant::ParticipantSet

use crate::api::ChainApi;
use crate::faults::OutageWindow;
use crate::metrics::EventKind;
use crate::world::{ChainCongestion, WorldError};
use ac3_chain::{
    Address, Amount, BlockHash, Blockchain, ChainId, ContractId, Timestamp, Transaction, TxId,
};
use ac3_contracts::{ChainAnchor, TxInclusionEvidence};

/// The declared scope one machine poll is audited against: identity for
/// attribution, plus the chains and actors its footprint allows.
#[derive(Debug, Clone)]
pub struct AuditScope {
    /// Who is being audited (e.g. `"machine 3"`), for the panic message.
    pub machine: String,
    /// The machine's current phase (its `phase_name()`), for the panic
    /// message.
    pub phase: String,
    /// Chains the footprint declares, sorted for reproducible messages.
    chains: Vec<ChainId>,
    /// Actor addresses the footprint declares, sorted.
    actors: Vec<Address>,
}

impl AuditScope {
    /// A scope for `machine` in `phase`, allowing exactly the given chains
    /// and actors.
    pub fn new(machine: String, phase: String, chains: &[ChainId], actors: &[Address]) -> Self {
        let mut chains = chains.to_vec();
        chains.sort();
        chains.dedup();
        let mut actors = actors.to_vec();
        actors.sort();
        actors.dedup();
        AuditScope { machine, phase, chains, actors }
    }

    /// Panic unless `chain` is inside the declared footprint.
    pub fn check_chain(&self, chain: ChainId) {
        if self.chains.binary_search(&chain).is_err() {
            panic!(
                "footprint audit: {} (phase {}) touched chain {} outside its declared \
                 footprint {:?}",
                self.machine, self.phase, chain, self.chains
            );
        }
    }

    /// Panic unless `address` is inside the declared footprint. `name` is
    /// the participant's registry name, for the message.
    pub fn check_actor(&self, address: Address, name: &str) {
        if self.actors.binary_search(&address).is_err() {
            panic!(
                "footprint audit: {} (phase {}) accessed actor {name} ({address}) outside \
                 its declared footprint ({} declared actor(s))",
                self.machine,
                self.phase,
                self.actors.len()
            );
        }
    }
}

/// A [`ChainApi`] decorator enforcing an [`AuditScope`]: every
/// chain-addressed call checks the chain against the declared footprint
/// before forwarding; scope-free calls (clock reads, billing probes,
/// timeline records) forward untouched.
pub struct AuditApi<'a> {
    inner: &'a mut dyn ChainApi,
    scope: &'a AuditScope,
}

impl<'a> AuditApi<'a> {
    /// Wrap `inner`, auditing every chain-addressed call against `scope`.
    pub fn new(inner: &'a mut dyn ChainApi, scope: &'a AuditScope) -> Self {
        AuditApi { inner, scope }
    }
}

impl ChainApi for AuditApi<'_> {
    fn now(&self) -> Timestamp {
        self.inner.now()
    }

    fn delta_ms(&self) -> u64 {
        self.inner.delta_ms()
    }

    fn min_block_interval_ms(&self) -> u64 {
        self.inner.min_block_interval_ms()
    }

    fn is_reachable(&self, chain: ChainId) -> bool {
        self.scope.check_chain(chain);
        self.inner.is_reachable(chain)
    }

    fn chain(&self, chain: ChainId) -> Result<&Blockchain, WorldError> {
        self.scope.check_chain(chain);
        self.inner.chain(chain)
    }

    fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError> {
        self.scope.check_chain(chain);
        self.inner.anchor(chain)
    }

    fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError> {
        self.scope.check_chain(chain);
        self.inner.tx_evidence_since(chain, anchor, txid)
    }

    fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)> {
        self.scope.check_chain(chain);
        self.inner.contract_state(chain, contract)
    }

    fn is_billed(&self, txid: &TxId) -> bool {
        self.inner.is_billed(txid)
    }

    fn tx_in_flight(&self, chain: ChainId, txid: &TxId) -> bool {
        self.scope.check_chain(chain);
        self.inner.tx_in_flight(chain, txid)
    }

    fn congestion(&mut self, chain: ChainId) -> Result<ChainCongestion, WorldError> {
        self.scope.check_chain(chain);
        self.inner.congestion(chain)
    }

    fn marginal_fee(&mut self, chain: ChainId) -> Result<Option<Amount>, WorldError> {
        self.scope.check_chain(chain);
        self.inner.marginal_fee(chain)
    }

    fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError> {
        self.scope.check_chain(chain);
        self.inner.submit(chain, tx)
    }

    fn replace_tx(
        &mut self,
        chain: ChainId,
        old: TxId,
        tx: Transaction,
    ) -> Result<TxId, WorldError> {
        self.scope.check_chain(chain);
        self.inner.replace_tx(chain, old, tx)
    }

    fn record(&mut self, at: Timestamp, kind: EventKind) {
        self.inner.record(at, kind);
    }

    fn schedule_outage(&mut self, chain: ChainId, window: OutageWindow) -> Result<(), WorldError> {
        self.scope.check_chain(chain);
        self.inner.schedule_outage(chain, window)
    }

    fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError> {
        self.scope.check_chain(chain);
        self.inner.inject_fork(chain, fork_depth, length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use ac3_chain::ChainParams;

    fn scoped_world() -> (World, ChainId, ChainId) {
        let mut world = World::new();
        let a = world.add_chain(ChainParams::test("a"), &[]);
        let b = world.add_chain(ChainParams::test("b"), &[]);
        (world, a, b)
    }

    #[test]
    fn in_scope_calls_pass_through() {
        let (mut world, a, _) = scoped_world();
        let scope = AuditScope::new("machine 0".into(), "lock".into(), &[a], &[]);
        let mut api = AuditApi::new(&mut world, &scope);
        assert!(api.is_reachable(a));
        assert!(api.chain(a).is_ok());
        assert!(api.anchor(a).is_ok());
        assert!(api.congestion(a).is_ok());
    }

    #[test]
    fn out_of_scope_chain_panics_with_attribution() {
        let (mut world, a, b) = scoped_world();
        let scope = AuditScope::new("machine 7".into(), "redeem".into(), &[a], &[]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let api = AuditApi::new(&mut world, &scope);
            let _ = api.chain(b);
        }))
        .expect_err("audit must panic");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("machine 7"), "message names the machine: {msg}");
        assert!(msg.contains("redeem"), "message names the phase: {msg}");
        assert!(msg.contains(&format!("{b}")), "message names the chain: {msg}");
    }

    #[test]
    fn actor_check_is_order_insensitive() {
        let alice = Address::from(ac3_crypto::KeyPair::from_seed(b"alice").public());
        let bob = Address::from(ac3_crypto::KeyPair::from_seed(b"bob").public());
        let carol = Address::from(ac3_crypto::KeyPair::from_seed(b"carol").public());
        let scope = AuditScope::new("m".into(), "p".into(), &[], &[bob, alice]);
        scope.check_actor(alice, "alice");
        scope.check_actor(bob, "bob");
        let err = std::panic::catch_unwind(|| scope.check_actor(carol, "carol"))
            .expect_err("undeclared actor panics");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("carol"), "message names the actor: {msg}");
    }
}
