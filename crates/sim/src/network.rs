//! The message-level network layer between clients and chains.
//!
//! Every client→chain interaction that mutates a mempool — a submission or
//! a replace-by-fee — can be routed through a per-chain `Link` as an
//! explicit `Message` instead of being applied synchronously. A link
//! carries a seeded deterministic RNG that samples, *at send time*, a
//! delivery delay and a drop decision for each message; undropped messages
//! queue on the link and are applied to the chain when simulated time
//! reaches their delivery instant, interleaved deterministically with block
//! production (see `World::advance`). Partition windows live on the link
//! too, so fault-injected outages and modeled network loss share one
//! mechanism.
//!
//! Determinism is the hard contract: the RNG state is part of the link, the
//! link moves with its chain slot when a world is sharded, and per-message
//! sampling happens in submission order — so a seeded lossy run produces
//! bitwise-identical results at any worker count.

use crate::faults::OutageWindow;
use crate::metrics::{FeeKind, SwapId};
use ac3_chain::{Amount, ChainId, Timestamp, Transaction, TxId};
use serde::{Deserialize, Serialize};

/// A seeded description of one world's network conditions: every link
/// derives its RNG from `seed` and its chain id, and samples each message's
/// delivery delay uniformly from `[latency_min_ms, latency_max_ms]` and its
/// drop decision at `drop_per_mille` ‰.
///
/// All-integer so profiles hash, compare, and serialize exactly; a
/// [`NetworkProfile::zero`] profile (no latency, no loss) makes the
/// networked API bitwise-identical to direct calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Seed for the per-link RNGs (mixed with each chain id).
    pub seed: u64,
    /// Minimum message delivery delay in simulated milliseconds.
    pub latency_min_ms: u64,
    /// Maximum message delivery delay in simulated milliseconds.
    pub latency_max_ms: u64,
    /// Probability, in thousandths, that a message is silently dropped.
    pub drop_per_mille: u32,
}

impl NetworkProfile {
    /// A profile with zero latency and zero loss: messages are applied
    /// inline at send time, so a networked run under this profile is
    /// bitwise identical to the direct (synchronous) API.
    pub fn zero(seed: u64) -> Self {
        NetworkProfile { seed, latency_min_ms: 0, latency_max_ms: 0, drop_per_mille: 0 }
    }

    /// Whether this profile can neither delay nor drop a message.
    pub fn is_zero(&self) -> bool {
        self.latency_max_ms == 0 && self.drop_per_mille == 0
    }
}

/// What a message asks the chain to do when it arrives.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    /// Admit a transaction to the mempool.
    Submit { tx: Transaction },
    /// Replace a pending transaction with a higher-fee re-bid.
    Replace { old: TxId, tx: Transaction },
}

/// One in-flight client→chain message.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    /// Send-order sequence number on this link (tiebreak for equal
    /// delivery instants: FIFO among simultaneous arrivals).
    pub seq: u64,
    /// Simulated instant the message will reach the chain.
    pub deliver_at: Timestamp,
    /// The swap billed for the message's fees, captured at send time.
    pub attribution: Option<SwapId>,
    /// The requested mempool operation.
    pub payload: Payload,
}

/// Aggregate delivery counters of one link (or, summed, of a whole world —
/// see `World::network_stats`). All counters are exact and deterministic
/// for a given seed, which is what lets CI ratchet them bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LinkStats {
    /// Submit messages sent (delivered, dropped, or still in flight).
    pub submits: u64,
    /// Replace-by-fee messages sent.
    pub replaces: u64,
    /// Congestion probes served.
    pub probes: u64,
    /// Messages applied to the chain (including inline zero-delay sends).
    pub delivered: u64,
    /// Messages the network silently dropped at send time.
    pub dropped: u64,
    /// Messages that arrived but were rejected by mempool admission.
    pub nacked: u64,
}

impl LinkStats {
    /// Fold another link's counters into this one.
    pub fn absorb(&mut self, other: &LinkStats) {
        self.submits += other.submits;
        self.replaces += other.replaces;
        self.probes += other.probes;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.nacked += other.nacked;
    }
}

/// A fee-ledger mutation produced by a message delivery. Deliveries run
/// inside per-chain advancement (possibly on a worker thread that owns only
/// the chain slot), so they cannot touch the world's ledger directly;
/// instead each link collects its deliveries' billing here and the world
/// drains every link's outbox in chain-id order after advancing — the same
/// order serially and in parallel, keeping the ledger deterministic.
#[derive(Debug, Clone)]
pub(crate) enum FeeEvent {
    /// A delivered submission was admitted: bill its fee.
    Bill {
        txid: TxId,
        kind: Option<FeeKind>,
        fee: Amount,
        swap: Option<SwapId>,
        evicted: Vec<TxId>,
    },
    /// A delivered replace-by-fee succeeded: reprice the original bill.
    Reprice { old: TxId, new: TxId, fee: Amount },
}

/// The network path to one chain: an RNG for per-message sampling, the
/// queue of in-flight messages, partition windows, and delivery counters.
///
/// The link is part of the chain's slot, so `World::split_shard` moves it —
/// RNG state and queue included — to whichever worker owns the chain, and
/// message sampling continues exactly where the serial run would have.
#[derive(Debug)]
pub(crate) struct Link {
    /// SplitMix64 state, seeded from the profile seed mixed with the chain
    /// id so sibling chains draw independent streams.
    rng: u64,
    /// Next send-order sequence number.
    seq: u64,
    /// In-flight messages, kept sorted by `(deliver_at, seq)`.
    pub queue: Vec<Message>,
    /// Partition windows: while one covers "now", sends fail with
    /// `ChainUnreachable` (the link-level form of a scheduled outage).
    pub partitions: Vec<OutageWindow>,
    /// Delivery counters.
    pub stats: LinkStats,
    /// Fee-ledger mutations pending drain (see [`FeeEvent`]).
    pub outbox: Vec<FeeEvent>,
}

impl Link {
    /// A fresh link to `chain` under `profile`.
    pub fn new(profile: &NetworkProfile, chain: ChainId) -> Self {
        // Decorrelate per-chain streams: hash the chain id into the seed
        // with the SplitMix64 increment so chain 0 does not replay the raw
        // profile seed.
        let rng =
            profile.seed.wrapping_add((chain.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Link {
            rng,
            seq: 0,
            queue: Vec::new(),
            partitions: Vec::new(),
            stats: LinkStats::default(),
            outbox: Vec::new(),
        }
    }

    /// The next raw SplitMix64 value.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Sample one message's fate at send time: `(delay_ms, dropped)`.
    /// Always draws exactly twice so the stream is independent of the
    /// profile's parameters.
    pub fn sample(&mut self, profile: &NetworkProfile) -> (u64, bool) {
        let span = profile.latency_max_ms.saturating_sub(profile.latency_min_ms);
        let delay =
            profile.latency_min_ms + if span == 0 { 0 } else { self.next_u64() % (span + 1) };
        let dropped = (self.next_u64() % 1_000) < profile.drop_per_mille as u64;
        (delay, dropped)
    }

    /// Whether a partition window covers `now`.
    pub fn is_partitioned(&self, now: Timestamp) -> bool {
        self.partitions.iter().any(|w| w.covers(now))
    }

    /// Queue a message for delivery at `deliver_at`, preserving the
    /// `(deliver_at, seq)` order.
    pub fn enqueue(
        &mut self,
        deliver_at: Timestamp,
        attribution: Option<SwapId>,
        payload: Payload,
    ) {
        let seq = self.seq;
        self.seq += 1;
        let msg = Message { seq, deliver_at, attribution, payload };
        let at = self.queue.partition_point(|m| (m.deliver_at, m.seq) <= (msg.deliver_at, msg.seq));
        self.queue.insert(at, msg);
    }

    /// The delivery instant of the earliest in-flight message, if any.
    pub fn next_delivery_at(&self) -> Option<Timestamp> {
        self.queue.first().map(|m| m.deliver_at)
    }

    /// Pop the earliest in-flight message, if it is due at or before `at`.
    pub fn pop_due(&mut self, at: Timestamp) -> Option<Message> {
        if self.queue.first().is_some_and(|m| m.deliver_at <= at) {
            Some(self.queue.remove(0))
        } else {
            None
        }
    }

    /// Whether a message carrying `txid` is still in flight.
    pub fn tx_in_flight(&self, txid: &TxId) -> bool {
        self.queue.iter().any(|m| match &m.payload {
            Payload::Submit { tx } => tx.id() == *txid,
            Payload::Replace { tx, .. } => tx.id() == *txid,
        })
    }
}

// Links ride inside `ChainSlot`s across scoped worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Link>();
    assert_send_sync::<NetworkProfile>();
    assert_send_sync::<LinkStats>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed_and_chain() {
        let profile =
            NetworkProfile { seed: 7, latency_min_ms: 10, latency_max_ms: 50, drop_per_mille: 100 };
        let draw = |chain: u32| {
            let mut link = Link::new(&profile, ChainId(chain));
            (0..32).map(|_| link.sample(&profile)).collect::<Vec<_>>()
        };
        assert_eq!(draw(0), draw(0), "same seed, same chain: same stream");
        assert_ne!(draw(0), draw(1), "sibling chains draw independent streams");
        for (delay, _) in draw(0) {
            assert!((10..=50).contains(&delay), "delay {delay} outside the profile bounds");
        }
    }

    #[test]
    fn zero_profile_never_delays_or_drops() {
        let profile = NetworkProfile::zero(123);
        assert!(profile.is_zero());
        let mut link = Link::new(&profile, ChainId(0));
        for _ in 0..100 {
            assert_eq!(link.sample(&profile), (0, false));
        }
    }

    #[test]
    fn queue_orders_by_delivery_then_seq() {
        let profile = NetworkProfile::zero(1);
        let mut link = Link::new(&profile, ChainId(0));
        let addr = ac3_chain::Address::from(ac3_crypto::KeyPair::from_seed(b"net").public());
        let tx = move |n: u64| ac3_chain::coinbase(addr, n, n);
        link.enqueue(30, None, Payload::Submit { tx: tx(0) });
        link.enqueue(10, None, Payload::Submit { tx: tx(1) });
        link.enqueue(10, None, Payload::Submit { tx: tx(2) });
        assert_eq!(link.next_delivery_at(), Some(10));
        assert!(link.pop_due(5).is_none(), "nothing due yet");
        let first = link.pop_due(10).expect("due");
        let second = link.pop_due(10).expect("due");
        assert!(first.seq < second.seq, "same instant delivers in send order");
        assert_eq!(link.next_delivery_at(), Some(30));
        assert!(link.tx_in_flight(&tx(0).id()));
        assert!(!link.tx_in_flight(&tx(1).id()));
    }
}
