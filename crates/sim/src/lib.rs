//! # ac3-sim
//!
//! The discrete-event simulation world for the AC3WN reproduction: multiple
//! simulated blockchains with independent block intervals and throughput
//! caps, participants with crash schedules, network-partition and fork
//! injection, and the metrics (timelines, fee ledgers, latency statistics)
//! the evaluation harness reads.
//!
//! The protocol drivers in `ac3-core` are written against this crate: they
//! create a [`world::World`], register [`participant::Participant`]s, apply a
//! [`faults::FaultPlan`], then execute their phases by submitting
//! transactions and advancing simulated time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod audit;
pub mod faults;
pub mod metrics;
pub mod network;
pub mod participant;
pub mod world;

pub use api::{ChainApi, DirectApi, NetworkedApi};
pub use audit::{AuditApi, AuditScope};
pub use faults::{Fault, FaultPlan, OutageWindow};
pub use metrics::{
    EventKind, FeeKind, FeeLedger, LatencyStats, SubTransactionRecord, SwapId, Timeline,
    TimelineEvent, TxBill,
};
pub use network::{LinkStats, NetworkProfile};
pub use participant::{CrashWindow, Participant, ParticipantSet};
pub use world::{ChainCongestion, World, WorldError};
