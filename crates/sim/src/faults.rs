//! Fault models: the failure modes the paper's protocols must survive.
//!
//! * **Crash failures** of participants — [`crate::participant::CrashWindow`]
//!   attached to a [`crate::participant::Participant`].
//! * **Network partitions** — [`OutageWindow`]s attached to a chain in the
//!   [`crate::world::World`]: while an outage covers the current time,
//!   submissions to that chain fail (the participant "cannot reach" its
//!   blockchain).
//! * **Forks / 51% attacks** — [`crate::world::World::inject_fork`] mines a
//!   competing branch, modelling the adversary of Section 6.3.
//!
//! [`FaultPlan`] bundles a named set of faults so experiments can describe
//! scenarios declaratively and apply them to a world/participant set in one
//! call.

use crate::participant::{CrashWindow, ParticipantSet};
use crate::world::{World, WorldError};
use ac3_chain::{Amount, ChainId, Timestamp};
use serde::{Deserialize, Serialize};

/// A half-open interval `[from, until)` of simulated time during which a
/// chain is unreachable: the chain is down at `from` and reachable again at
/// `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Outage start (inclusive).
    pub from: Timestamp,
    /// Outage end (exclusive).
    pub until: Timestamp,
}

impl OutageWindow {
    /// Whether the outage covers `now`.
    pub fn covers(&self, now: Timestamp) -> bool {
        now >= self.from && now < self.until
    }
}

/// One declarative fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Crash a participant for a window of time.
    Crash {
        /// The participant's name.
        participant: String,
        /// The crash window.
        window: CrashWindow,
    },
    /// Partition a chain away from all participants for a window of time.
    Partition {
        /// The partitioned chain.
        chain: ChainId,
        /// The outage window.
        window: OutageWindow,
    },
    /// Mine an adversarial fork on a chain at a given simulated time.
    Fork {
        /// The attacked chain.
        chain: ChainId,
        /// How many blocks below the tip to fork from.
        fork_depth: u64,
        /// Length of the adversarial branch.
        length: u64,
    },
    /// A Byzantine witness network equivocates: its operator signs *both*
    /// the commit and the abort decision for the same graph. Behavioral —
    /// deferred to a campaign machine that emits the conflicting
    /// attestations and lets honest watchdogs assemble the fraud proof.
    Equivocate {
        /// The witness chain whose operator misbehaves.
        witness_chain: ChainId,
    },
    /// A bribed witness operator signs one decision *against* observed
    /// evidence (commit without deployments, or abort despite them).
    /// A single signature is not self-incriminating, so this is detectable
    /// (testimony vs. on-chain state) but not slashable.
    Bribe {
        /// The witness chain whose operator is bribed.
        witness_chain: ChainId,
        /// `true`: attest commit against evidence; `false`: attest abort.
        commit: bool,
    },
    /// An eviction-flooder keeps a chain's bounded mempool full of
    /// just-above-floor bids for the duration of the window, forcing
    /// honest bidders to outbid it or be delayed.
    FloodMempool {
        /// The flooded chain.
        chain: ChainId,
        /// When the flooding runs.
        window: OutageWindow,
        /// Maximum total fees the flooder may spend.
        budget: Amount,
    },
    /// A base-fee spiker fills every block of a chain during the window,
    /// driving the EIP-1559-style base fee up under the victims' feet.
    SpikeBaseFee {
        /// The spiked chain.
        chain: ChainId,
        /// When the spiking runs.
        window: OutageWindow,
        /// Maximum total fees the spiker may spend.
        budget: Amount,
    },
}

impl Fault {
    /// The chain this fault touches, if any — campaign machines use this to
    /// declare scheduler footprints.
    pub fn chain(&self) -> Option<ChainId> {
        match self {
            Fault::Crash { .. } => None,
            Fault::Partition { chain, .. }
            | Fault::Fork { chain, .. }
            | Fault::FloodMempool { chain, .. }
            | Fault::SpikeBaseFee { chain, .. } => Some(*chain),
            Fault::Equivocate { witness_chain } | Fault::Bribe { witness_chain, .. } => {
                Some(*witness_chain)
            }
        }
    }

    /// Whether this fault is *behavioral* — it describes ongoing adversary
    /// conduct rather than a one-shot world mutation, so [`FaultPlan::apply`]
    /// defers it to the caller (a campaign machine) like forks.
    pub fn is_behavioral(&self) -> bool {
        matches!(
            self,
            Fault::Fork { .. }
                | Fault::Equivocate { .. }
                | Fault::Bribe { .. }
                | Fault::FloodMempool { .. }
                | Fault::SpikeBaseFee { .. }
        )
    }
}

/// A named collection of faults applied to a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable scenario name.
    pub name: String,
    /// The faults to apply.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the failure-free baseline).
    pub fn none() -> Self {
        FaultPlan { name: "no-faults".to_string(), faults: Vec::new() }
    }

    /// A plan with a single crashed participant — the paper's motivating
    /// scenario ("Bob fails to provide s to SC1 before t1 expires due to a
    /// crash failure").
    pub fn crash(participant: &str, from: Timestamp, until: Timestamp) -> Self {
        FaultPlan {
            name: format!("crash-{participant}"),
            faults: vec![Fault::Crash {
                participant: participant.to_string(),
                window: CrashWindow { from, until },
            }],
        }
    }

    /// Add a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Apply crash and partition faults up front. Behavioral faults (forks,
    /// Byzantine witness conduct and fee-market griefing — see
    /// [`Fault::is_behavioral`]) are returned so the caller can drive them
    /// at the appropriate protocol step: they are time-of-attack dependent
    /// and, for the griefing faults, require a funded adversary actor.
    pub fn apply(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<Vec<Fault>, WorldError> {
        let mut deferred = Vec::new();
        for fault in &self.faults {
            match fault {
                Fault::Crash { participant, window } => {
                    if let Some(p) = participants.get_mut(participant) {
                        p.schedule_crash(*window);
                    }
                }
                Fault::Partition { chain, window } => {
                    world.schedule_outage(*chain, *window)?;
                }
                _ => deferred.push(fault.clone()),
            }
        }
        Ok(deferred)
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::ChainParams;

    #[test]
    fn outage_window_coverage() {
        // Half-open `[from, until)`: down at `from`, back at `until`.
        let w = OutageWindow { from: 10, until: 20 };
        assert!(!w.covers(9));
        assert!(w.covers(10));
        assert!(w.covers(19));
        assert!(!w.covers(20));
        // Degenerate boundaries: an empty window covers nothing.
        let empty = OutageWindow { from: 10, until: 10 };
        assert!(!empty.covers(9));
        assert!(!empty.covers(10));
        assert!(!empty.covers(11));
        let instant = OutageWindow { from: 10, until: 11 };
        assert!(instant.covers(10));
        assert!(!instant.covers(11));
    }

    #[test]
    fn crash_plan_applies_to_named_participant() {
        let mut world = World::new();
        let mut participants = ParticipantSet::new();
        participants.add("alice");
        participants.add("bob");

        let plan = FaultPlan::crash("bob", 100, 500);
        let deferred = plan.apply(&mut world, &mut participants).unwrap();
        assert!(deferred.is_empty());
        assert!(participants.get("bob").unwrap().is_available(50));
        assert!(!participants.get("bob").unwrap().is_available(200));
        assert!(participants.get("alice").unwrap().is_available(200));
    }

    #[test]
    fn partition_plan_applies_to_world() {
        let mut world = World::new();
        let chain = world.add_chain(ChainParams::test("c"), &[]);
        let mut participants = ParticipantSet::new();
        let plan = FaultPlan::none()
            .with(Fault::Partition { chain, window: OutageWindow { from: 0, until: 1_000 } });
        plan.apply(&mut world, &mut participants).unwrap();
        assert!(!world.is_reachable(chain));
        world.advance(1_000);
        assert!(world.is_reachable(chain));
    }

    #[test]
    fn fork_faults_are_deferred_to_caller() {
        let mut world = World::new();
        let chain = world.add_chain(ChainParams::test("c"), &[]);
        let mut participants = ParticipantSet::new();
        let plan = FaultPlan::none().with(Fault::Fork { chain, fork_depth: 2, length: 3 });
        let deferred = plan.apply(&mut world, &mut participants).unwrap();
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn unknown_participant_is_ignored() {
        let mut world = World::new();
        let mut participants = ParticipantSet::new();
        participants.add("alice");
        // Crashing someone who does not exist is a no-op rather than an
        // error: plans are reused across scenarios with different casts.
        let plan = FaultPlan::crash("zelda", 0, 10);
        assert!(plan.apply(&mut world, &mut participants).is_ok());
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::crash("bob", 0, 1).is_empty());
    }

    #[test]
    fn behavioral_faults_are_deferred_with_their_chains() {
        let mut world = World::new();
        let chain = world.add_chain(ChainParams::test("c"), &[]);
        let mut participants = ParticipantSet::new();
        let window = OutageWindow { from: 5_000, until: 9_000 };
        let plan = FaultPlan::none()
            .with(Fault::Equivocate { witness_chain: chain })
            .with(Fault::Bribe { witness_chain: chain, commit: true })
            .with(Fault::FloodMempool { chain, window, budget: 500 })
            .with(Fault::SpikeBaseFee { chain, window, budget: 500 })
            .with(Fault::Crash {
                participant: "alice".to_string(),
                window: CrashWindow { from: 0, until: 1 },
            });
        let deferred = plan.apply(&mut world, &mut participants).unwrap();
        // The crash applies up front; everything behavioral is handed back.
        assert_eq!(deferred.len(), 4);
        for fault in &deferred {
            assert!(fault.is_behavioral());
            assert_eq!(fault.chain(), Some(chain));
        }
        assert!(!Fault::Crash {
            participant: "alice".to_string(),
            window: CrashWindow { from: 0, until: 1 }
        }
        .is_behavioral());
    }
}
