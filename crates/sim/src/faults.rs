//! Fault models: the failure modes the paper's protocols must survive.
//!
//! * **Crash failures** of participants — [`crate::participant::CrashWindow`]
//!   attached to a [`crate::participant::Participant`].
//! * **Network partitions** — [`OutageWindow`]s attached to a chain in the
//!   [`crate::world::World`]: while an outage covers the current time,
//!   submissions to that chain fail (the participant "cannot reach" its
//!   blockchain).
//! * **Forks / 51% attacks** — [`crate::world::World::inject_fork`] mines a
//!   competing branch, modelling the adversary of Section 6.3.
//!
//! [`FaultPlan`] bundles a named set of faults so experiments can describe
//! scenarios declaratively and apply them to a world/participant set in one
//! call.

use crate::participant::{CrashWindow, ParticipantSet};
use crate::world::{World, WorldError};
use ac3_chain::{ChainId, Timestamp};
use serde::{Deserialize, Serialize};

/// A half-open interval `[from, until)` of simulated time during which a
/// chain is unreachable: the chain is down at `from` and reachable again at
/// `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Outage start (inclusive).
    pub from: Timestamp,
    /// Outage end (exclusive).
    pub until: Timestamp,
}

impl OutageWindow {
    /// Whether the outage covers `now`.
    pub fn covers(&self, now: Timestamp) -> bool {
        now >= self.from && now < self.until
    }
}

/// One declarative fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Crash a participant for a window of time.
    Crash {
        /// The participant's name.
        participant: String,
        /// The crash window.
        window: CrashWindow,
    },
    /// Partition a chain away from all participants for a window of time.
    Partition {
        /// The partitioned chain.
        chain: ChainId,
        /// The outage window.
        window: OutageWindow,
    },
    /// Mine an adversarial fork on a chain at a given simulated time.
    Fork {
        /// The attacked chain.
        chain: ChainId,
        /// How many blocks below the tip to fork from.
        fork_depth: u64,
        /// Length of the adversarial branch.
        length: u64,
    },
}

/// A named collection of faults applied to a scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable scenario name.
    pub name: String,
    /// The faults to apply.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (the failure-free baseline).
    pub fn none() -> Self {
        FaultPlan { name: "no-faults".to_string(), faults: Vec::new() }
    }

    /// A plan with a single crashed participant — the paper's motivating
    /// scenario ("Bob fails to provide s to SC1 before t1 expires due to a
    /// crash failure").
    pub fn crash(participant: &str, from: Timestamp, until: Timestamp) -> Self {
        FaultPlan {
            name: format!("crash-{participant}"),
            faults: vec![Fault::Crash {
                participant: participant.to_string(),
                window: CrashWindow { from, until },
            }],
        }
    }

    /// Add a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Apply crash and partition faults up front. Fork faults are returned
    /// so the caller can trigger them at the appropriate protocol step
    /// (they are time-of-attack dependent).
    pub fn apply(
        &self,
        world: &mut World,
        participants: &mut ParticipantSet,
    ) -> Result<Vec<Fault>, WorldError> {
        let mut deferred = Vec::new();
        for fault in &self.faults {
            match fault {
                Fault::Crash { participant, window } => {
                    if let Some(p) = participants.get_mut(participant) {
                        p.schedule_crash(*window);
                    }
                }
                Fault::Partition { chain, window } => {
                    world.schedule_outage(*chain, *window)?;
                }
                Fault::Fork { .. } => deferred.push(fault.clone()),
            }
        }
        Ok(deferred)
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::ChainParams;

    #[test]
    fn outage_window_coverage() {
        // Half-open `[from, until)`: down at `from`, back at `until`.
        let w = OutageWindow { from: 10, until: 20 };
        assert!(!w.covers(9));
        assert!(w.covers(10));
        assert!(w.covers(19));
        assert!(!w.covers(20));
        // Degenerate boundaries: an empty window covers nothing.
        let empty = OutageWindow { from: 10, until: 10 };
        assert!(!empty.covers(9));
        assert!(!empty.covers(10));
        assert!(!empty.covers(11));
        let instant = OutageWindow { from: 10, until: 11 };
        assert!(instant.covers(10));
        assert!(!instant.covers(11));
    }

    #[test]
    fn crash_plan_applies_to_named_participant() {
        let mut world = World::new();
        let mut participants = ParticipantSet::new();
        participants.add("alice");
        participants.add("bob");

        let plan = FaultPlan::crash("bob", 100, 500);
        let deferred = plan.apply(&mut world, &mut participants).unwrap();
        assert!(deferred.is_empty());
        assert!(participants.get("bob").unwrap().is_available(50));
        assert!(!participants.get("bob").unwrap().is_available(200));
        assert!(participants.get("alice").unwrap().is_available(200));
    }

    #[test]
    fn partition_plan_applies_to_world() {
        let mut world = World::new();
        let chain = world.add_chain(ChainParams::test("c"), &[]);
        let mut participants = ParticipantSet::new();
        let plan = FaultPlan::none()
            .with(Fault::Partition { chain, window: OutageWindow { from: 0, until: 1_000 } });
        plan.apply(&mut world, &mut participants).unwrap();
        assert!(!world.is_reachable(chain));
        world.advance(1_000);
        assert!(world.is_reachable(chain));
    }

    #[test]
    fn fork_faults_are_deferred_to_caller() {
        let mut world = World::new();
        let chain = world.add_chain(ChainParams::test("c"), &[]);
        let mut participants = ParticipantSet::new();
        let plan = FaultPlan::none().with(Fault::Fork { chain, fork_depth: 2, length: 3 });
        let deferred = plan.apply(&mut world, &mut participants).unwrap();
        assert_eq!(deferred.len(), 1);
    }

    #[test]
    fn unknown_participant_is_ignored() {
        let mut world = World::new();
        let mut participants = ParticipantSet::new();
        participants.add("alice");
        // Crashing someone who does not exist is a no-op rather than an
        // error: plans are reused across scenarios with different casts.
        let plan = FaultPlan::crash("zelda", 0, 10);
        assert!(plan.apply(&mut world, &mut participants).is_ok());
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::crash("bob", 0, 1).is_empty());
    }
}
