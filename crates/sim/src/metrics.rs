//! Metrics collected during simulations: event timelines, fee accounting and
//! latency summaries — the raw material for the reproduction of the paper's
//! evaluation section.

use ac3_chain::{Amount, ChainId, ContractId, Timestamp, TxId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one AC2T within a batch of concurrently executing swaps.
/// Allocated by whoever builds the batch (scenario builder or scheduler);
/// used to attribute fees and timelines to individual swaps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SwapId(pub u64);

impl fmt::Display for SwapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swap-{}", self.0)
    }
}

/// The kinds of protocol-level events recorded on a timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The participants agreed on and multisigned the AC2T graph.
    GraphSigned,
    /// The witness contract (or Trent registration) was submitted.
    WitnessRegistered,
    /// An asset swap contract was submitted for deployment.
    ContractSubmitted {
        /// The hosting chain.
        chain: ChainId,
        /// The deployed contract.
        contract: ContractId,
    },
    /// An asset swap contract's deployment became visible/stable.
    ContractPublished {
        /// The hosting chain.
        chain: ChainId,
        /// The deployed contract.
        contract: ContractId,
    },
    /// The commit/abort decision was reached (witness state change or
    /// Trent signature issued).
    DecisionReached {
        /// `true` for commit (redeem authorised), `false` for abort.
        commit: bool,
    },
    /// A contract was redeemed.
    ContractRedeemed {
        /// The hosting chain.
        chain: ChainId,
        /// The contract.
        contract: ContractId,
    },
    /// A contract was refunded.
    ContractRefunded {
        /// The hosting chain.
        chain: ChainId,
        /// The contract.
        contract: ContractId,
    },
    /// A free-form annotation.
    Note(String),
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Simulated time of the event (milliseconds).
    pub at: Timestamp,
    /// What happened.
    pub kind: EventKind,
}

/// An ordered record of protocol events — used to reproduce the phase
/// timelines of Figures 8 and 9.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<TimelineEvent>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an event.
    pub fn record(&mut self, at: Timestamp, kind: EventKind) {
        self.events.push(TimelineEvent { at, kind });
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Time of the first event, if any.
    pub fn start(&self) -> Option<Timestamp> {
        self.events.iter().map(|e| e.at).min()
    }

    /// Time of the last event, if any.
    pub fn end(&self) -> Option<Timestamp> {
        self.events.iter().map(|e| e.at).max()
    }

    /// End-to-end duration (last minus first event), or 0 if fewer than two
    /// events were recorded.
    pub fn span(&self) -> Timestamp {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        }
    }

    /// The first event matching `predicate`.
    pub fn find<F: Fn(&EventKind) -> bool>(&self, predicate: F) -> Option<&TimelineEvent> {
        self.events.iter().find(|e| predicate(&e.kind))
    }

    /// Count events matching `predicate`.
    pub fn count<F: Fn(&EventKind) -> bool>(&self, predicate: F) -> usize {
        self.events.iter().filter(|e| predicate(&e.kind)).count()
    }

    /// Merge another timeline's events into this one (keeping order by
    /// timestamp).
    pub fn merge(&mut self, other: &Timeline) {
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.at);
    }
}

/// The fee category of a billed transaction — the paper's Section 6.2 cost
/// model distinguishes deployment fees `fd` from function-call fees `ffc`
/// (plain transfers are the third, cheaper kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeeKind {
    /// Smart-contract deployment (`fd`).
    Deploy,
    /// Smart-contract function call (`ffc`).
    Call,
    /// Plain asset transfer.
    Transfer,
}

/// The live billing record of one pending transaction, kept so replacement
/// (replace-by-fee) and eviction can correct the ledger: only the fee of
/// the transaction that ultimately occupies the slot is owed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxBill {
    /// The chain the transaction was submitted to.
    pub chain: ChainId,
    /// The fee category.
    pub kind: FeeKind,
    /// The billed fee.
    pub fee: Amount,
    /// The swap attributed with the fee, if attribution was active.
    pub swap: Option<SwapId>,
}

/// Per-chain fee accounting, mirroring the paper's Section 6.2 cost model:
/// every contract deployment costs `fd` and every function call costs `ffc`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeeLedger {
    deployments: BTreeMap<ChainId, u64>,
    calls: BTreeMap<ChainId, u64>,
    transfers: BTreeMap<ChainId, u64>,
    fees_paid: BTreeMap<ChainId, Amount>,
    /// Fees attributed to individual swaps of a concurrent batch (a second
    /// axis over the same payments, not an addition to the totals).
    by_swap: BTreeMap<SwapId, Amount>,
    /// Billing records keyed by transaction id, so replace-by-fee and
    /// eviction can reprice or refund exactly what was billed. Entries for
    /// mined transactions are retained but inert (a canonical transaction
    /// can no longer be replaced or evicted, and `reprice`/`refund` are
    /// only reachable through mempool operations that verify membership);
    /// growth is bounded by the total transactions billed in the world's
    /// lifetime.
    #[serde(skip)]
    pending: BTreeMap<TxId, TxBill>,
}

impl FeeLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a contract deployment with its fee.
    pub fn record_deployment(&mut self, chain: ChainId, fee: Amount) {
        *self.deployments.entry(chain).or_default() += 1;
        *self.fees_paid.entry(chain).or_default() += fee;
    }

    /// Record a contract function call with its fee.
    pub fn record_call(&mut self, chain: ChainId, fee: Amount) {
        *self.calls.entry(chain).or_default() += 1;
        *self.fees_paid.entry(chain).or_default() += fee;
    }

    /// Record a plain transfer with its fee.
    pub fn record_transfer(&mut self, chain: ChainId, fee: Amount) {
        *self.transfers.entry(chain).or_default() += 1;
        *self.fees_paid.entry(chain).or_default() += fee;
    }

    /// Attribute an already-recorded fee to a swap (per-swap view of the
    /// same payments the per-chain maps hold).
    pub fn attribute(&mut self, swap: SwapId, fee: Amount) {
        *self.by_swap.entry(swap).or_default() += fee;
    }

    /// Bill one submitted transaction: record its kind count, its fee on
    /// the chain, optionally its swap attribution, and remember the bill so
    /// a later replacement or eviction can correct the ledger.
    pub fn bill(
        &mut self,
        chain: ChainId,
        txid: TxId,
        kind: FeeKind,
        fee: Amount,
        swap: Option<SwapId>,
    ) {
        match kind {
            FeeKind::Deploy => self.record_deployment(chain, fee),
            FeeKind::Call => self.record_call(chain, fee),
            FeeKind::Transfer => self.record_transfer(chain, fee),
        }
        if let Some(swap) = swap {
            self.attribute(swap, fee);
        }
        self.pending.insert(txid, TxBill { chain, kind, fee, swap });
    }

    /// Replace-by-fee repricing: the old transaction will never pay; the
    /// replacement's (strictly higher) fee is owed instead. The billing
    /// record moves to the new id. Returns the superseded bill.
    pub fn reprice(&mut self, old: &TxId, new_txid: TxId, new_fee: Amount) -> Option<TxBill> {
        let bill = self.pending.remove(old)?;
        let paid = self.fees_paid.entry(bill.chain).or_default();
        *paid = paid.saturating_sub(bill.fee) + new_fee;
        if let Some(swap) = bill.swap {
            let attributed = self.by_swap.entry(swap).or_default();
            *attributed = attributed.saturating_sub(bill.fee) + new_fee;
        }
        self.pending.insert(new_txid, TxBill { fee: new_fee, ..bill });
        Some(bill)
    }

    /// Whether a billing record for `txid` is still held. Distinguishes a
    /// transaction the ledger still charges for (pending in a mempool, or
    /// mined — possibly onto a since-reorged-out branch) from one whose
    /// fee was refunded on eviction.
    pub fn is_billed(&self, txid: &TxId) -> bool {
        self.pending.contains_key(txid)
    }

    /// Refund an evicted (never-mined) transaction: its fee and its kind
    /// count are rolled back. Returns the refunded bill.
    pub fn refund(&mut self, txid: &TxId) -> Option<TxBill> {
        let bill = self.pending.remove(txid)?;
        let count = match bill.kind {
            FeeKind::Deploy => self.deployments.entry(bill.chain).or_default(),
            FeeKind::Call => self.calls.entry(bill.chain).or_default(),
            FeeKind::Transfer => self.transfers.entry(bill.chain).or_default(),
        };
        *count = count.saturating_sub(1);
        let paid = self.fees_paid.entry(bill.chain).or_default();
        *paid = paid.saturating_sub(bill.fee);
        if let Some(swap) = bill.swap {
            let attributed = self.by_swap.entry(swap).or_default();
            *attributed = attributed.saturating_sub(bill.fee);
        }
        Some(bill)
    }

    /// Split out the slices belonging to `chains` and `swaps`: the
    /// per-chain counters and payments of the named chains, the per-swap
    /// attributions of the named swaps, and every live billing record on
    /// one of the named chains. The moved slices leave this ledger, so a
    /// shard world (see `World::split_shard`) can bill, reprice, and
    /// refund against real records — an eviction-refund or reorg-
    /// abandonment probe (`is_billed`) inside the shard must see exactly
    /// the history the full world saw.
    pub fn split_off(&mut self, chains: &[ChainId], swaps: &[SwapId]) -> FeeLedger {
        let mut out = FeeLedger::new();
        for chain in chains {
            if let Some(v) = self.deployments.remove(chain) {
                out.deployments.insert(*chain, v);
            }
            if let Some(v) = self.calls.remove(chain) {
                out.calls.insert(*chain, v);
            }
            if let Some(v) = self.transfers.remove(chain) {
                out.transfers.insert(*chain, v);
            }
            if let Some(v) = self.fees_paid.remove(chain) {
                out.fees_paid.insert(*chain, v);
            }
        }
        for swap in swaps {
            if let Some(v) = self.by_swap.remove(swap) {
                out.by_swap.insert(*swap, v);
            }
        }
        let chain_set: std::collections::BTreeSet<ChainId> = chains.iter().copied().collect();
        let (moved, kept) = std::mem::take(&mut self.pending)
            .into_iter()
            .partition(|(_, bill)| chain_set.contains(&bill.chain));
        out.pending = moved;
        self.pending = kept;
        out
    }

    /// Fold a split-off slice back in. Every map is keyed (by chain, swap,
    /// or transaction id), so absorption is additive merging — the result
    /// is independent of the order shards are absorbed in.
    pub fn absorb(&mut self, other: FeeLedger) {
        for (chain, v) in other.deployments {
            *self.deployments.entry(chain).or_default() += v;
        }
        for (chain, v) in other.calls {
            *self.calls.entry(chain).or_default() += v;
        }
        for (chain, v) in other.transfers {
            *self.transfers.entry(chain).or_default() += v;
        }
        for (chain, v) in other.fees_paid {
            *self.fees_paid.entry(chain).or_default() += v;
        }
        for (swap, v) in other.by_swap {
            *self.by_swap.entry(swap).or_default() += v;
        }
        self.pending.extend(other.pending);
    }

    /// Fees attributed to one swap of a concurrent batch.
    pub fn fees_for_swap(&self, swap: SwapId) -> Amount {
        self.by_swap.get(&swap).copied().unwrap_or(0)
    }

    /// Swaps with attributed fees, in id order.
    pub fn attributed_swaps(&self) -> Vec<SwapId> {
        self.by_swap.keys().copied().collect()
    }

    /// Total number of contract deployments across chains.
    pub fn total_deployments(&self) -> u64 {
        self.deployments.values().sum()
    }

    /// Total number of contract calls across chains.
    pub fn total_calls(&self) -> u64 {
        self.calls.values().sum()
    }

    /// Total fees paid across chains.
    pub fn total_fees(&self) -> Amount {
        self.fees_paid.values().sum()
    }

    /// Fees paid on one chain.
    pub fn fees_on(&self, chain: ChainId) -> Amount {
        self.fees_paid.get(&chain).copied().unwrap_or(0)
    }

    /// Deployments on one chain.
    pub fn deployments_on(&self, chain: ChainId) -> u64 {
        self.deployments.get(&chain).copied().unwrap_or(0)
    }

    /// Calls on one chain.
    pub fn calls_on(&self, chain: ChainId) -> u64 {
        self.calls.get(&chain).copied().unwrap_or(0)
    }
}

impl fmt::Display for FeeLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} deployments, {} calls, {} total fees",
            self.total_deployments(),
            self.total_calls(),
            self.total_fees()
        )
    }
}

/// A simple latency summary over repeated trials.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample (milliseconds or Δ units; caller's choice, be
    /// consistent).
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().min().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().max().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
    }

    /// The p-th percentile (0–100) using the nearest-rank method: the
    /// smallest sample such that at least `⌈p/100·N⌉` samples are ≤ it
    /// (p = 0 maps to the minimum).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        sorted.get(rank.saturating_sub(1).min(n - 1)).copied()
    }
}

/// A record of a completed (or failed) sub-transaction, used by the
/// atomicity auditor in `ac3-core`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubTransactionRecord {
    /// The chain the sub-transaction ran on.
    pub chain: ChainId,
    /// The swap contract implementing it.
    pub contract: ContractId,
    /// The deployment transaction.
    pub deploy_tx: TxId,
    /// Terminal state tag observed ("P", "RD", "RF").
    pub final_state: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_crypto::Hash256;

    #[test]
    fn timeline_span_and_lookup() {
        let mut t = Timeline::new();
        t.record(100, EventKind::GraphSigned);
        t.record(400, EventKind::DecisionReached { commit: true });
        t.record(900, EventKind::Note("done".to_string()));
        assert_eq!(t.span(), 800);
        assert_eq!(t.start(), Some(100));
        assert_eq!(t.end(), Some(900));
        assert!(t.find(|k| matches!(k, EventKind::DecisionReached { commit: true })).is_some());
        assert_eq!(t.count(|k| matches!(k, EventKind::Note(_))), 1);
    }

    #[test]
    fn empty_timeline_has_zero_span() {
        let t = Timeline::new();
        assert_eq!(t.span(), 0);
        assert_eq!(t.start(), None);
    }

    #[test]
    fn timelines_merge_in_time_order() {
        let mut a = Timeline::new();
        a.record(300, EventKind::Note("a".to_string()));
        let mut b = Timeline::new();
        b.record(100, EventKind::Note("b".to_string()));
        a.merge(&b);
        assert_eq!(a.events()[0].at, 100);
        assert_eq!(a.events().len(), 2);
    }

    #[test]
    fn fee_ledger_totals() {
        let mut ledger = FeeLedger::new();
        let c0 = ChainId(0);
        let c1 = ChainId(1);
        ledger.record_deployment(c0, 4);
        ledger.record_deployment(c1, 4);
        ledger.record_call(c0, 2);
        ledger.record_transfer(c1, 1);
        assert_eq!(ledger.total_deployments(), 2);
        assert_eq!(ledger.total_calls(), 1);
        assert_eq!(ledger.total_fees(), 11);
        assert_eq!(ledger.fees_on(c0), 6);
        assert_eq!(ledger.deployments_on(c1), 1);
        assert_eq!(ledger.calls_on(c1), 0);
        assert!(ledger.to_string().contains("2 deployments"));
    }

    #[test]
    fn latency_stats_summary() {
        let mut stats = LatencyStats::new();
        for v in [10u64, 20, 30, 40, 50] {
            stats.record(v);
        }
        assert_eq!(stats.len(), 5);
        assert_eq!(stats.min(), Some(10));
        assert_eq!(stats.max(), Some(50));
        assert_eq!(stats.mean(), Some(30.0));
        assert_eq!(stats.percentile(50.0), Some(30));
        assert_eq!(stats.percentile(100.0), Some(50));
    }

    #[test]
    fn percentile_is_true_nearest_rank() {
        // Nearest-rank on an even-length sample, where the old rounded
        // linear index diverged: p25 of four samples is the 1st order
        // statistic (⌈0.25·4⌉ = 1), not the 2nd.
        let mut stats = LatencyStats::new();
        for v in [1u64, 2, 3, 4] {
            stats.record(v);
        }
        assert_eq!(stats.percentile(0.0), Some(1), "p0 is the minimum");
        assert_eq!(stats.percentile(25.0), Some(1));
        assert_eq!(stats.percentile(50.0), Some(2));
        assert_eq!(stats.percentile(75.0), Some(3));
        assert_eq!(stats.percentile(100.0), Some(4));

        let mut single = LatencyStats::new();
        single.record(42);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(single.percentile(p), Some(42));
        }
    }

    #[test]
    fn fee_attribution_per_swap() {
        let mut ledger = FeeLedger::new();
        ledger.record_call(ChainId(0), 2);
        ledger.attribute(SwapId(1), 2);
        ledger.record_call(ChainId(0), 4);
        ledger.attribute(SwapId(2), 4);
        ledger.record_call(ChainId(1), 1);
        ledger.attribute(SwapId(1), 1);
        assert_eq!(ledger.fees_for_swap(SwapId(1)), 3);
        assert_eq!(ledger.fees_for_swap(SwapId(2)), 4);
        assert_eq!(ledger.fees_for_swap(SwapId(3)), 0);
        assert_eq!(ledger.attributed_swaps(), vec![SwapId(1), SwapId(2)]);
        // Attribution is a second axis over the same payments.
        assert_eq!(ledger.total_fees(), 7);
        assert_eq!(SwapId(1).to_string(), "swap-1");
    }

    #[test]
    fn latency_stats_empty() {
        let stats = LatencyStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.mean(), None);
        assert_eq!(stats.percentile(50.0), None);
    }

    #[test]
    fn sub_transaction_record_round_trip() {
        let rec = SubTransactionRecord {
            chain: ChainId(2),
            contract: ContractId(Hash256::digest(b"sc")),
            deploy_tx: TxId(Hash256::digest(b"tx")),
            final_state: "RD".to_string(),
        };
        assert_eq!(rec.clone(), rec);
    }
}
