//! The discrete-event multi-chain world.
//!
//! A [`World`] owns a set of simulated blockchains (asset chains plus one or
//! more witness chains), a simulated clock, and the fault machinery the
//! paper's failure scenarios need (chain outages modelling network
//! partitions, and deliberate fork injection modelling the 51% attacks of
//! Section 6.3). Protocol drivers in `ac3-core` advance the world while
//! executing their phases and read all their measurements from it.

use crate::faults::OutageWindow;
use crate::metrics::{FeeLedger, Timeline};
use ac3_chain::{
    Address, Amount, Block, BlockHash, Blockchain, ChainError, ChainId, ChainParams, ContractId,
    Timestamp, Transaction, TxId, TxKind,
};
use ac3_contracts::{ChainAnchor, SwapVm, TxInclusionEvidence};
use ac3_crypto::KeyPair;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by world operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// The referenced chain does not exist.
    UnknownChain(ChainId),
    /// The chain exists but is unreachable due to an injected outage.
    ChainUnreachable(ChainId),
    /// A chain-level error.
    Chain(ChainError),
    /// A wait timed out before its condition became true.
    Timeout {
        /// What was being waited for.
        what: String,
        /// The simulated time at which the wait gave up.
        at: Timestamp,
    },
    /// Evidence could not be constructed (transaction not canonical, anchor
    /// not canonical, ...).
    EvidenceUnavailable(String),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::UnknownChain(id) => write!(f, "unknown chain {id}"),
            WorldError::ChainUnreachable(id) => write!(f, "{id} unreachable (network partition)"),
            WorldError::Chain(e) => write!(f, "chain error: {e}"),
            WorldError::Timeout { what, at } => write!(f, "timed out at {at} waiting for {what}"),
            WorldError::EvidenceUnavailable(m) => write!(f, "evidence unavailable: {m}"),
        }
    }
}

impl std::error::Error for WorldError {}

impl From<ChainError> for WorldError {
    fn from(e: ChainError) -> Self {
        WorldError::Chain(e)
    }
}

struct ChainSlot {
    chain: Blockchain,
    miner: Address,
    next_block_at: Timestamp,
    outages: Vec<OutageWindow>,
}

/// The simulated multi-chain world.
pub struct World {
    now: Timestamp,
    chains: BTreeMap<ChainId, ChainSlot>,
    next_chain_id: u32,
    /// Timeline of protocol-level events (filled by protocol drivers).
    pub timeline: Timeline,
    /// Fee accounting (filled by protocol drivers).
    pub fees: FeeLedger,
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("chains", &self.chains.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    /// An empty world at time 0.
    pub fn new() -> Self {
        World {
            now: 0,
            chains: BTreeMap::new(),
            next_chain_id: 0,
            timeline: Timeline::new(),
            fees: FeeLedger::new(),
        }
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Add a blockchain running the [`SwapVm`] with the given parameters and
    /// genesis balances. Returns its chain id.
    pub fn add_chain(&mut self, params: ChainParams, genesis: &[(Address, Amount)]) -> ChainId {
        let id = ChainId(self.next_chain_id);
        self.next_chain_id += 1;
        let miner =
            Address::from(KeyPair::from_seed(format!("miner-{}", params.name).as_bytes()).public());
        let interval = params.block_interval_ms;
        let chain = Blockchain::new(id, params, Arc::new(SwapVm::new()), genesis);
        self.chains.insert(
            id,
            ChainSlot { chain, miner, next_block_at: self.now + interval, outages: Vec::new() },
        );
        id
    }

    /// Ids of all chains, in creation order.
    pub fn chain_ids(&self) -> Vec<ChainId> {
        self.chains.keys().copied().collect()
    }

    /// Borrow a chain.
    pub fn chain(&self, id: ChainId) -> Result<&Blockchain, WorldError> {
        self.chains.get(&id).map(|s| &s.chain).ok_or(WorldError::UnknownChain(id))
    }

    /// Mutably borrow a chain (bypasses outage checks; used by tests and
    /// fault injection, not by protocol drivers).
    pub fn chain_mut(&mut self, id: ChainId) -> Result<&mut Blockchain, WorldError> {
        self.chains.get_mut(&id).map(|s| &mut s.chain).ok_or(WorldError::UnknownChain(id))
    }

    /// The paper's Δ for this world: enough simulated time for any
    /// participant to publish a smart contract on any chain *and for the
    /// publication to be publicly recognised* (i.e. buried under the chain's
    /// stable depth). We take the maximum over all chains.
    pub fn delta_ms(&self) -> u64 {
        self.chains
            .values()
            .map(|s| s.chain.params().block_interval_ms * (s.chain.params().stable_depth + 1))
            .max()
            .unwrap_or(1_000)
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Make a chain unreachable (network partition) during a window of
    /// simulated time: submissions during the window fail.
    pub fn schedule_outage(
        &mut self,
        chain: ChainId,
        window: OutageWindow,
    ) -> Result<(), WorldError> {
        self.chains.get_mut(&chain).ok_or(WorldError::UnknownChain(chain))?.outages.push(window);
        Ok(())
    }

    /// Whether a chain is reachable right now.
    pub fn is_reachable(&self, chain: ChainId) -> bool {
        self.chains
            .get(&chain)
            .map(|s| !s.outages.iter().any(|o| o.covers(self.now)))
            .unwrap_or(false)
    }

    /// Deliberately mine a competing branch of `length` blocks, forking off
    /// the canonical block `fork_depth` blocks below the current tip. This
    /// is the attacker of Section 6.3 attempting to rewrite the witness
    /// chain's decision. Returns the hashes of the branch blocks.
    pub fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError> {
        let now = self.now;
        let slot = self.chains.get_mut(&chain).ok_or(WorldError::UnknownChain(chain))?;
        let tip_height = slot.chain.height();
        let base_height = tip_height.saturating_sub(fork_depth);
        let mut parent = slot
            .chain
            .store()
            .canonical_block_at_height(base_height)
            .ok_or(WorldError::UnknownChain(chain))?;
        let attacker = Address::from(KeyPair::from_seed(b"attacker-51pct").public());
        let mut branch = Vec::with_capacity(length as usize);
        for i in 0..length {
            let block = slot.chain.mine_block_on(parent, attacker, now + i)?;
            parent = block.hash();
            branch.push(parent);
        }
        Ok(branch)
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advance simulated time by `ms`, mining blocks on every chain whenever
    /// its block interval elapses.
    pub fn advance(&mut self, ms: u64) {
        let target = self.now + ms;
        loop {
            // Find the earliest pending block production at or before target.
            let next = self
                .chains
                .iter()
                .map(|(id, s)| (s.next_block_at, *id))
                .filter(|(at, _)| *at <= target)
                .min();
            match next {
                Some((at, id)) => {
                    self.now = at;
                    let slot = self.chains.get_mut(&id).expect("chain exists");
                    let miner = slot.miner;
                    // Mining ignores outages: the chain's own miners are not
                    // partitioned from themselves, only submitters may be.
                    let _ = slot.chain.mine_block(miner, at);
                    slot.next_block_at = at + slot.chain.params().block_interval_ms;
                }
                None => break,
            }
        }
        self.now = target;
    }

    /// Advance in steps of one block interval until `pred` is true or
    /// `max_ms` have elapsed. Returns the elapsed time on success.
    pub fn advance_until<F>(
        &mut self,
        what: &str,
        max_ms: u64,
        mut pred: F,
    ) -> Result<u64, WorldError>
    where
        F: FnMut(&World) -> bool,
    {
        let start = self.now;
        if pred(self) {
            return Ok(0);
        }
        let step =
            self.chains.values().map(|s| s.chain.params().block_interval_ms).min().unwrap_or(1_000);
        while self.now < start + max_ms {
            self.advance(step);
            if pred(self) {
                return Ok(self.now - start);
            }
        }
        Err(WorldError::Timeout { what: what.to_string(), at: self.now })
    }

    /// Advance until the chain has mined `n` additional blocks.
    pub fn advance_blocks(&mut self, chain: ChainId, n: u64) -> Result<(), WorldError> {
        let start = self.chain(chain)?.height();
        let interval = self.chain(chain)?.params().block_interval_ms;
        self.advance_until("blocks to be mined", interval * (n + 2) * 2, |w| {
            w.chain(chain).map(|c| c.height() >= start + n).unwrap_or(false)
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Submit a transaction to a chain, respecting injected outages. Fees
    /// are recorded in the world ledger by transaction kind.
    pub fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError> {
        if !self.is_reachable(chain) {
            return Err(WorldError::ChainUnreachable(chain));
        }
        match &tx.kind {
            TxKind::Deploy { .. } => self.fees.record_deployment(chain, tx.fee),
            TxKind::Call { .. } => self.fees.record_call(chain, tx.fee),
            TxKind::Transfer { .. } => self.fees.record_transfer(chain, tx.fee),
            TxKind::Coinbase { .. } => {}
        }
        let slot = self.chains.get_mut(&chain).ok_or(WorldError::UnknownChain(chain))?;
        Ok(slot.chain.submit(tx)?)
    }

    /// Wait until a transaction is buried under `depth` blocks on the
    /// canonical chain (or time out after `max_ms`).
    pub fn wait_for_depth(
        &mut self,
        chain: ChainId,
        txid: TxId,
        depth: u64,
        max_ms: u64,
    ) -> Result<u64, WorldError> {
        self.advance_until(&format!("tx {txid} at depth {depth}"), max_ms, |w| {
            w.chain(chain).ok().and_then(|c| c.tx_depth(&txid)).is_some_and(|d| d >= depth)
        })
    }

    /// Wait until a transaction reaches the chain's configured stable depth.
    pub fn wait_for_stable(
        &mut self,
        chain: ChainId,
        txid: TxId,
        max_ms: u64,
    ) -> Result<u64, WorldError> {
        let depth = self.chain(chain)?.params().stable_depth;
        self.wait_for_depth(chain, txid, depth, max_ms)
    }

    /// Wait until a transaction is included in any canonical block.
    pub fn wait_for_inclusion(
        &mut self,
        chain: ChainId,
        txid: TxId,
        max_ms: u64,
    ) -> Result<u64, WorldError> {
        self.wait_for_depth(chain, txid, 0, max_ms)
    }

    // ------------------------------------------------------------------
    // Evidence construction (Section 4.3)
    // ------------------------------------------------------------------

    /// A stable anchor for `chain`: the canonical block currently buried
    /// under the chain's stable depth.
    pub fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError> {
        let c = self.chain(chain)?;
        let hash = c.stable_block_hash();
        let header = c
            .store()
            .header(&hash)
            .ok_or_else(|| WorldError::EvidenceUnavailable("stable block missing".to_string()))?;
        Ok(ChainAnchor { chain, hash, height: header.height })
    }

    /// Build self-contained inclusion evidence for `txid` relative to
    /// `anchor` (header chain since the anchor + Merkle proof + the full
    /// transaction).
    pub fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError> {
        let c = self.chain(chain)?;
        let (block_hash, index) = c
            .store()
            .find_canonical_tx(&txid)
            .ok_or_else(|| WorldError::EvidenceUnavailable(format!("{txid} not canonical")))?;
        let block: &Block = c
            .store()
            .get(&block_hash)
            .ok_or_else(|| WorldError::EvidenceUnavailable("block missing".to_string()))?;
        let tx = block.transactions[index].clone();
        let proof = block.tx_tree().prove(index).ok_or_else(|| {
            WorldError::EvidenceUnavailable("proof construction failed".to_string())
        })?;
        let headers = c
            .headers_since(&anchor.hash)
            .ok_or_else(|| WorldError::EvidenceUnavailable("anchor not canonical".to_string()))?;
        Ok(TxInclusionEvidence { tx, tx_height: block.header.height, headers, proof })
    }

    /// Look up the state tag and burial depth of a contract.
    pub fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)> {
        self.chain(chain).ok()?.contract_state_with_depth(&contract)
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Differential integrity check of the incremental state engine: every
    /// chain's materialized canonical state must equal a full from-genesis
    /// replay. Panics (with the offending chain id) on divergence.
    ///
    /// Intended for tests and fault experiments after reorg-heavy scenarios
    /// (fork injection, 51% attacks); it is O(total blocks), so production
    /// drivers should not call it on the hot path.
    pub fn assert_state_integrity(&self) {
        for (id, slot) in &self.chains {
            let oracle = slot.chain.replay_state_from_genesis();
            assert!(
                slot.chain.state() == &oracle,
                "incremental state of {id} diverged from the replay oracle"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::TxOutput;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn fast_params(name: &str) -> ChainParams {
        let mut p = ChainParams::test(name);
        p.block_interval_ms = 1_000;
        p.stable_depth = 3;
        p
    }

    #[test]
    fn chains_mine_at_their_intervals() {
        let mut world = World::new();
        let fast = world.add_chain(fast_params("fast"), &[]);
        let mut slow_params = fast_params("slow");
        slow_params.block_interval_ms = 5_000;
        let slow = world.add_chain(slow_params, &[]);

        world.advance(10_000);
        assert_eq!(world.chain(fast).unwrap().height(), 10);
        assert_eq!(world.chain(slow).unwrap().height(), 2);
        assert_eq!(world.now(), 10_000);
    }

    #[test]
    fn delta_is_driven_by_the_slowest_chain() {
        let mut world = World::new();
        world.add_chain(fast_params("fast"), &[]);
        let mut slow = fast_params("slow");
        slow.block_interval_ms = 10_000;
        slow.stable_depth = 5;
        world.add_chain(slow, &[]);
        assert_eq!(world.delta_ms(), 10_000 * 6);
    }

    #[test]
    fn submit_wait_and_evidence_round_trip() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let anchor = world.anchor(chain).unwrap();

        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &bob, 10, 1).unwrap();
        let txid = world.submit(chain, kp.transfer(inputs, outputs, 1)).unwrap();

        world.wait_for_stable(chain, txid, 60_000).unwrap();
        assert!(world.chain(chain).unwrap().tx_is_stable(&txid));

        let evidence = world.tx_evidence_since(chain, &anchor, txid).unwrap();
        evidence.verify(&anchor, 3).unwrap();
    }

    #[test]
    fn outage_blocks_submissions_until_it_lifts() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        world.schedule_outage(chain, OutageWindow { from: 0, until: 5_000 }).unwrap();

        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let tx = kp.transfer(vec![], vec![TxOutput::new(alice, 0)], 0);
        assert!(matches!(
            world.submit(chain, tx.clone()).unwrap_err(),
            WorldError::ChainUnreachable(_)
        ));
        world.advance(5_000);
        assert!(world.is_reachable(chain));
        world.submit(chain, tx).unwrap();
    }

    #[test]
    fn advance_until_times_out() {
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        let err = world
            .advance_until("the impossible", 3_000, |w| w.chain(chain).unwrap().height() > 1_000)
            .unwrap_err();
        assert!(matches!(err, WorldError::Timeout { .. }));
    }

    #[test]
    fn fork_injection_creates_competing_branch() {
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        world.advance(6_000); // height 6
        let tip_before = world.chain(chain).unwrap().tip();
        // Fork 3 below the tip with a branch long enough to win.
        let branch = world.inject_fork(chain, 3, 5).unwrap();
        assert_eq!(branch.len(), 5);
        let tip_after = world.chain(chain).unwrap().tip();
        assert_ne!(tip_before, tip_after, "attacker branch becomes canonical");
        assert_eq!(world.chain(chain).unwrap().height(), 8);
        // The reorg must leave every chain's incremental state identical to
        // a full replay.
        world.assert_state_integrity();
    }

    #[test]
    fn advance_blocks_waits_for_exactly_n() {
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        world.advance_blocks(chain, 4).unwrap();
        assert!(world.chain(chain).unwrap().height() >= 4);
    }

    #[test]
    fn fee_ledger_tracks_submissions() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 1).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 1)).unwrap();
        assert_eq!(world.fees.total_fees(), 1);
    }
}
