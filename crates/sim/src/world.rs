//! The discrete-event multi-chain world.
//!
//! A [`World`] owns a set of simulated blockchains (asset chains plus one or
//! more witness chains), a simulated clock, and the fault machinery the
//! paper's failure scenarios need (chain outages modelling network
//! partitions, and deliberate fork injection modelling the 51% attacks of
//! Section 6.3). The protocol state machines in `ac3-core` submit
//! transactions and read all their measurements from the world but never
//! advance its clock; time is advanced between machine polls by whoever
//! owns the loop — `ac3_core::driver::drive` for a single swap, the
//! `ac3_core::scheduler::Scheduler` for a concurrent batch (the batch's
//! machines then contend for block space in the shared mempools).

use crate::faults::OutageWindow;
use crate::metrics::{FeeKind, FeeLedger, SwapId, Timeline};
use crate::network::{FeeEvent, Link, LinkStats, NetworkProfile, Payload};
use ac3_chain::{
    Address, Amount, BlockHash, Blockchain, ChainError, ChainId, ChainParams, ContractId,
    Timestamp, Transaction, TxId, TxKind,
};
use ac3_contracts::{ChainAnchor, SwapVm, TxInclusionEvidence};
use ac3_crypto::KeyPair;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by world operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// The referenced chain does not exist.
    UnknownChain(ChainId),
    /// The chain exists but is unreachable due to an injected outage.
    ChainUnreachable(ChainId),
    /// A block the operation depends on is missing from the chain's store
    /// (e.g. the fork base of an injected fork).
    MissingBlock {
        /// The chain whose store was probed.
        chain: ChainId,
        /// The height at which no canonical block was found.
        height: u64,
    },
    /// A chain-level error.
    Chain(ChainError),
    /// A wait timed out before its condition became true.
    Timeout {
        /// What was being waited for.
        what: String,
        /// The simulated time at which the wait gave up.
        at: Timestamp,
    },
    /// Evidence could not be constructed (transaction not canonical, anchor
    /// not canonical, ...).
    EvidenceUnavailable(String),
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::UnknownChain(id) => write!(f, "unknown chain {id}"),
            WorldError::ChainUnreachable(id) => write!(f, "{id} unreachable (network partition)"),
            WorldError::MissingBlock { chain, height } => {
                write!(f, "no canonical block at height {height} on {chain}")
            }
            WorldError::Chain(e) => write!(f, "chain error: {e}"),
            WorldError::Timeout { what, at } => write!(f, "timed out at {at} waiting for {what}"),
            WorldError::EvidenceUnavailable(m) => write!(f, "evidence unavailable: {m}"),
        }
    }
}

impl std::error::Error for WorldError {}

impl From<ChainError> for WorldError {
    fn from(e: ChainError) -> Self {
        WorldError::Chain(e)
    }
}

struct ChainSlot {
    chain: Blockchain,
    miner: Address,
    next_block_at: Timestamp,
    outages: Vec<OutageWindow>,
    /// The message link to this chain; `Some` once a network profile is
    /// attached to the world. Moves with the slot across shard splits, so
    /// its RNG stream and in-flight queue stay with whichever worker owns
    /// the chain.
    link: Option<Link>,
}

/// Memoised congestion view of one chain, keyed by the (clock, mempool
/// revision) pair it was derived at. At 10k concurrent machines the
/// stuck-bid escalation path probes congestion once per poll; within one
/// scheduler tick the clock is frozen and most mempools are untouched, so
/// the snapshot — and the O(block budget) marginal-price walk — can be
/// derived once per (chain, tick) and replayed from here.
struct CongestionCacheEntry {
    now: Timestamp,
    revision: u64,
    snapshot: ChainCongestion,
    /// The marginal price of next-block inclusion (the fee at mempool rank
    /// `block_budget - 1`), computed lazily on the first probe at this
    /// (clock, revision) — non-Adaptive pollers never pay for it.
    marginal: Option<Option<Amount>>,
}

/// Snapshot of one chain's mempool congestion — the demand side of the fee
/// market, read by protocol machines deciding whether to out-bid their own
/// stuck submissions and by witness-assignment strategies routing new swaps
/// to the least-loaded witness network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainCongestion {
    /// The observed chain.
    pub chain: ChainId,
    /// Number of pending transactions.
    pub depth: usize,
    /// Mempool capacity.
    pub capacity: usize,
    /// Smallest fee among pending transactions (`None` when empty).
    pub min_fee: Option<Amount>,
    /// Smallest fee that would currently buy a mempool slot: the chain's
    /// dynamic base fee while there is room, otherwise the larger of the
    /// base fee and the eviction floor. An opening bid at this price is
    /// always admitted.
    pub fee_floor: Amount,
    /// The chain's dynamic per-block base fee
    /// ([`ac3_chain::BaseFeeSchedule`]): the admission price driven by
    /// sustained block utilisation rather than pool fullness. 0 under a
    /// disabled schedule.
    pub base_fee: Amount,
    /// Per-block transaction budget derived from the chain's tps cap — a
    /// pending transaction ranked at or beyond this will not make the next
    /// block. The *marginal price* of next-block inclusion (the fee at
    /// rank `block_budget - 1`) is deliberately not part of the snapshot:
    /// it costs an O(budget) mempool walk, so callers that need it probe
    /// [`ac3_chain::Blockchain::mempool_fee_at_rank`] explicitly.
    pub block_budget: usize,
}

/// The simulated multi-chain world.
pub struct World {
    now: Timestamp,
    chains: BTreeMap<ChainId, ChainSlot>,
    next_chain_id: u32,
    /// Timeline of protocol-level events (filled by protocol drivers).
    pub timeline: Timeline,
    /// Fee accounting (filled by protocol drivers).
    pub fees: FeeLedger,
    /// The swap currently charged for submitted fees (set by the scheduler
    /// around each machine poll so concurrent AC2Ts get separate bills).
    fee_attribution: Option<SwapId>,
    /// Per-chain congestion snapshots memoised by (clock, mempool
    /// revision); see [`World::congestion`].
    congestion_cache: BTreeMap<ChainId, CongestionCacheEntry>,
    /// Pinned Δ (see [`World::pin_timing`]): a shard world split off a
    /// larger world must keep using the full world's Δ — timelocks are
    /// commitments against global publication time, not against whichever
    /// chains happen to share the shard.
    delta_override: Option<u64>,
    /// Pinned minimum block interval (see [`World::pin_timing`]).
    min_interval_override: Option<u64>,
    /// The attached network profile, if any (see
    /// [`World::attach_network`]): every chain slot then carries a
    /// [`Link`] and the networked API routes submissions through it.
    network: Option<NetworkProfile>,
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("chains", &self.chains.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for World {
    fn default() -> Self {
        Self::new()
    }
}

impl World {
    /// An empty world at time 0.
    pub fn new() -> Self {
        World {
            now: 0,
            chains: BTreeMap::new(),
            next_chain_id: 0,
            timeline: Timeline::new(),
            fees: FeeLedger::new(),
            fee_attribution: None,
            congestion_cache: BTreeMap::new(),
            delta_override: None,
            min_interval_override: None,
            network: None,
        }
    }

    /// Route fees of subsequently submitted transactions to `swap` (in
    /// addition to the per-chain ledger); `None` stops attribution.
    pub fn set_fee_attribution(&mut self, swap: Option<SwapId>) {
        self.fee_attribution = swap;
    }

    /// The swap currently charged for submitted fees, if any.
    pub fn fee_attribution(&self) -> Option<SwapId> {
        self.fee_attribution
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Add a blockchain running the [`SwapVm`] with the given parameters and
    /// genesis balances. Returns its chain id.
    pub fn add_chain(&mut self, params: ChainParams, genesis: &[(Address, Amount)]) -> ChainId {
        let id = ChainId(self.next_chain_id);
        self.next_chain_id += 1;
        let miner =
            Address::from(KeyPair::from_seed(format!("miner-{}", params.name).as_bytes()).public());
        let interval = params.block_interval_ms;
        let chain = Blockchain::new(id, params, Arc::new(SwapVm::new()), genesis);
        let link = self.network.as_ref().map(|profile| Link::new(profile, id));
        self.chains.insert(
            id,
            ChainSlot {
                chain,
                miner,
                next_block_at: self.now + interval,
                outages: Vec::new(),
                link,
            },
        );
        id
    }

    /// Ids of all chains, in creation order.
    pub fn chain_ids(&self) -> Vec<ChainId> {
        self.chains.keys().copied().collect()
    }

    /// Borrow a chain.
    pub fn chain(&self, id: ChainId) -> Result<&Blockchain, WorldError> {
        self.chains.get(&id).map(|s| &s.chain).ok_or(WorldError::UnknownChain(id))
    }

    /// Mutably borrow a chain (bypasses outage checks; used by tests and
    /// fault injection, not by protocol drivers).
    pub fn chain_mut(&mut self, id: ChainId) -> Result<&mut Blockchain, WorldError> {
        self.chains.get_mut(&id).map(|s| &mut s.chain).ok_or(WorldError::UnknownChain(id))
    }

    /// The paper's Δ for this world: enough simulated time for any
    /// participant to publish a smart contract on any chain *and for the
    /// publication to be publicly recognised* (i.e. buried under the chain's
    /// stable depth). We take the maximum over all chains.
    pub fn delta_ms(&self) -> u64 {
        if let Some(delta) = self.delta_override {
            return delta;
        }
        self.chains
            .values()
            .map(|s| s.chain.params().block_interval_ms * (s.chain.params().stable_depth + 1))
            .max()
            .unwrap_or(1_000)
    }

    /// The smallest block interval across chains — the natural polling step
    /// for waits on on-chain conditions (nothing can change between blocks).
    pub fn min_block_interval_ms(&self) -> u64 {
        if let Some(interval) = self.min_interval_override {
            return interval;
        }
        self.chains.values().map(|s| s.chain.params().block_interval_ms).min().unwrap_or(1_000)
    }

    /// Pin Δ and the minimum block interval to explicit values, overriding
    /// the per-chain derivations. A shard world split off a larger world
    /// (see [`World::split_shard`]) holds only its own chains, but the
    /// machines it runs negotiated their timelocks against the *full*
    /// world's Δ — deriving a smaller Δ from the shard's chains would
    /// silently shrink every safety margin.
    pub fn pin_timing(&mut self, delta_ms: u64, min_block_interval_ms: u64) {
        self.delta_override = Some(delta_ms);
        self.min_interval_override = Some(min_block_interval_ms);
    }

    // ------------------------------------------------------------------
    // Network
    // ------------------------------------------------------------------

    /// Attach a network profile: every chain (existing and future) gets a
    /// message `Link` seeded from the profile, and the networked API
    /// (`NetworkedApi`) routes submissions and re-bids through those links
    /// as delayed, droppable messages. Re-attaching replaces the links
    /// (fresh RNG streams, empty queues).
    pub fn attach_network(&mut self, profile: NetworkProfile) {
        self.network = Some(profile);
        for (id, slot) in self.chains.iter_mut() {
            slot.link = Some(Link::new(&profile, *id));
        }
    }

    /// Whether a network profile is attached (links exist).
    pub fn network_attached(&self) -> bool {
        self.network.is_some()
    }

    /// The attached network profile, if any.
    pub fn network_profile(&self) -> Option<&NetworkProfile> {
        self.network.as_ref()
    }

    /// Aggregate delivery counters over every chain's link, folded in
    /// chain-id order. Zero when no network is attached.
    pub fn network_stats(&self) -> LinkStats {
        let mut stats = LinkStats::default();
        for slot in self.chains.values() {
            if let Some(link) = &slot.link {
                stats.absorb(&link.stats);
            }
        }
        stats
    }

    /// Mutable access to a chain's link (send path of the networked API).
    pub(crate) fn link_mut(&mut self, chain: ChainId) -> Option<&mut Link> {
        self.chains.get_mut(&chain).and_then(|s| s.link.as_mut())
    }

    /// Whether a message carrying `txid` is still in flight to `chain`.
    pub fn tx_in_flight(&self, chain: ChainId, txid: &TxId) -> bool {
        self.chains.get(&chain).and_then(|s| s.link.as_ref()).is_some_and(|l| l.tx_in_flight(txid))
    }

    // ------------------------------------------------------------------
    // Faults
    // ------------------------------------------------------------------

    /// Make a chain unreachable (network partition) during a window of
    /// simulated time: submissions during the window fail. With a network
    /// attached the window lives on the chain's `Link` — fault-injected
    /// partitions and modeled message loss share the one mechanism — and
    /// on the slot's own outage list otherwise.
    pub fn schedule_outage(
        &mut self,
        chain: ChainId,
        window: OutageWindow,
    ) -> Result<(), WorldError> {
        let slot = self.chains.get_mut(&chain).ok_or(WorldError::UnknownChain(chain))?;
        match slot.link.as_mut() {
            Some(link) => link.partitions.push(window),
            None => slot.outages.push(window),
        }
        Ok(())
    }

    /// Whether a chain is reachable right now. Checks both the slot's
    /// outage windows and, when a network is attached, the link's
    /// partition windows. Messages already in flight still deliver during
    /// a partition — the gate is at send time, like the paper's model of a
    /// partitioned *submitter*.
    pub fn is_reachable(&self, chain: ChainId) -> bool {
        self.chains
            .get(&chain)
            .map(|s| {
                !s.outages.iter().any(|o| o.covers(self.now))
                    && !s.link.as_ref().is_some_and(|l| l.is_partitioned(self.now))
            })
            .unwrap_or(false)
    }

    /// Deliberately mine a competing branch of `length` blocks, forking off
    /// the canonical block `fork_depth` blocks below the current tip. This
    /// is the attacker of Section 6.3 attempting to rewrite the witness
    /// chain's decision. Returns the hashes of the branch blocks.
    pub fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError> {
        let now = self.now;
        let slot = self.chains.get_mut(&chain).ok_or(WorldError::UnknownChain(chain))?;
        let tip_height = slot.chain.height();
        let base_height = tip_height.saturating_sub(fork_depth);
        let mut parent = slot
            .chain
            .store()
            .canonical_block_at_height(base_height)
            .ok_or(WorldError::MissingBlock { chain, height: base_height })?;
        let attacker = Address::from(KeyPair::from_seed(b"attacker-51pct").public());
        let mut branch = Vec::with_capacity(length as usize);
        for i in 0..length {
            let block = slot.chain.mine_block_on(parent, attacker, now + i)?;
            parent = block.hash();
            branch.push(parent);
        }
        Ok(branch)
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advance simulated time by `ms`, mining blocks on every chain
    /// whenever its block interval elapses and delivering due network
    /// messages in between.
    ///
    /// Chains are advanced one at a time with the per-chain event loop of
    /// `World::advance_slot`; cross-chain interleaving is unobservable
    /// (mining or delivering on one chain never reads or writes another),
    /// so this is bitwise identical to a global time-ordered event loop —
    /// the differential test `advance_parallel_matches_serial_bitwise`
    /// pins exactly this equivalence.
    pub fn advance(&mut self, ms: u64) {
        let target = self.now + ms;
        for slot in self.chains.values_mut() {
            Self::advance_slot(slot, target);
        }
        self.now = target;
        self.drain_network_outboxes();
    }

    /// Run one chain's event loop up to `target`: block production at the
    /// chain's interval, interleaved in time order with the delivery of
    /// the link's due messages. A message and a block due at the same
    /// instant deliver the message first — a submission arriving "as the
    /// block is mined" can still make that block, matching the synchronous
    /// path where the submit call precedes the advance.
    ///
    /// Mining ignores outages: the chain's own miners are not partitioned
    /// from themselves, only submitters may be. In-flight messages deliver
    /// during partitions too — the reachability gate is at send time.
    fn advance_slot(slot: &mut ChainSlot, target: Timestamp) {
        loop {
            let next_block = (slot.next_block_at <= target).then_some(slot.next_block_at);
            let next_msg =
                slot.link.as_ref().and_then(|l| l.next_delivery_at()).filter(|at| *at <= target);
            match (next_msg, next_block) {
                (Some(m), Some(b)) if m <= b => Self::deliver_one(slot, m),
                (Some(m), None) => Self::deliver_one(slot, m),
                (_, Some(at)) => {
                    let miner = slot.miner;
                    let _ = slot.chain.mine_block(miner, at);
                    slot.next_block_at = at + slot.chain.params().block_interval_ms;
                }
                (None, None) => break,
            }
        }
    }

    /// Apply the earliest due message on `slot`'s link to its chain,
    /// recording admission results as stats and fee-ledger events on the
    /// link (the world drains them after the advance — see
    /// [`World::drain_network_outboxes`]).
    fn deliver_one(slot: &mut ChainSlot, at: Timestamp) {
        let link = slot.link.as_mut().expect("deliver_one only runs with a link");
        let msg = link.pop_due(at).expect("caller checked a message is due");
        match msg.payload {
            Payload::Submit { tx } => {
                let fee = tx.fee;
                let kind = match &tx.kind {
                    TxKind::Deploy { .. } => Some(FeeKind::Deploy),
                    TxKind::Call { .. } => Some(FeeKind::Call),
                    TxKind::Transfer { .. } => Some(FeeKind::Transfer),
                    TxKind::Coinbase { .. } => None,
                };
                match slot.chain.submit_with_evictions(tx) {
                    Ok((txid, evicted)) => {
                        let link = slot.link.as_mut().expect("checked above");
                        link.stats.delivered += 1;
                        link.outbox.push(FeeEvent::Bill {
                            txid,
                            kind,
                            fee,
                            swap: msg.attribution,
                            evicted: evicted.iter().map(|t| t.id()).collect(),
                        });
                    }
                    Err(_) => {
                        slot.link.as_mut().expect("checked above").stats.nacked += 1;
                    }
                }
            }
            Payload::Replace { old, tx } => {
                let fee = tx.fee;
                match slot.chain.replace(&old, tx) {
                    Ok((new, _replaced)) => {
                        let link = slot.link.as_mut().expect("checked above");
                        link.stats.delivered += 1;
                        link.outbox.push(FeeEvent::Reprice { old, new, fee });
                    }
                    Err(_) => {
                        slot.link.as_mut().expect("checked above").stats.nacked += 1;
                    }
                }
            }
        }
    }

    /// Fold every link's pending fee events into the world ledger, in
    /// chain-id order. Deliveries run inside per-chain advancement —
    /// possibly on a worker thread that owns only the slot — so they
    /// cannot bill the shared ledger directly; draining here, in the same
    /// deterministic order serially and in parallel, keeps the ledger
    /// bitwise identical at any thread count.
    fn drain_network_outboxes(&mut self) {
        if self.network.is_none() {
            return;
        }
        let mut events: Vec<(ChainId, FeeEvent)> = Vec::new();
        for (id, slot) in self.chains.iter_mut() {
            if let Some(link) = slot.link.as_mut() {
                events.extend(link.outbox.drain(..).map(|e| (*id, e)));
            }
        }
        for (chain, event) in events {
            match event {
                FeeEvent::Bill { txid, kind, fee, swap, evicted } => {
                    for dropped in &evicted {
                        self.fees.refund(dropped);
                    }
                    if let Some(kind) = kind {
                        self.fees.bill(chain, txid, kind, fee, swap);
                    }
                }
                FeeEvent::Reprice { old, new, fee } => {
                    self.fees.reprice(&old, new, fee);
                }
            }
        }
    }

    /// Advance simulated time by `ms` exactly like [`World::advance`], with
    /// the per-chain mining loops spread across up to `threads` scoped OS
    /// threads. Chains are independent within a tick — a block mined on one
    /// chain never touches another chain's mempool, store, or state — so
    /// the per-chain loops commute and the post-advance world is bitwise
    /// identical to the serial schedule at any thread count (including 1).
    pub fn advance_parallel(&mut self, ms: u64, threads: usize) {
        let target = self.now + ms;
        let mut slots: Vec<&mut ChainSlot> = self.chains.values_mut().collect();
        let workers = threads.max(1).min(slots.len().max(1));
        if workers <= 1 {
            for slot in slots {
                Self::advance_slot(slot, target);
            }
        } else {
            let chunk = slots.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for shard in slots.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for slot in shard {
                            Self::advance_slot(slot, target);
                        }
                    });
                }
            });
        }
        self.now = target;
        self.drain_network_outboxes();
    }

    /// Advance in steps of one block interval until `pred` is true or
    /// `max_ms` have elapsed. Returns the elapsed time on success.
    pub fn advance_until<F>(
        &mut self,
        what: &str,
        max_ms: u64,
        mut pred: F,
    ) -> Result<u64, WorldError>
    where
        F: FnMut(&World) -> bool,
    {
        let start = self.now;
        if pred(self) {
            return Ok(0);
        }
        let step = self.min_block_interval_ms();
        while self.now < start + max_ms {
            self.advance(step);
            if pred(self) {
                return Ok(self.now - start);
            }
        }
        Err(WorldError::Timeout { what: what.to_string(), at: self.now })
    }

    /// Advance until the chain has mined `n` additional blocks.
    pub fn advance_blocks(&mut self, chain: ChainId, n: u64) -> Result<(), WorldError> {
        let start = self.chain(chain)?.height();
        let interval = self.chain(chain)?.params().block_interval_ms;
        self.advance_until("blocks to be mined", interval * (n + 2) * 2, |w| {
            w.chain(chain).map(|c| c.height() >= start + n).unwrap_or(false)
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Submit a transaction to a chain, respecting injected outages. Fees
    /// are recorded in the world ledger by transaction kind — but only for
    /// transactions the chain actually admits: a rejected submission (bad
    /// signature, mempool conflict, partitioned or unknown chain) costs
    /// nothing, and a pending transaction priced out of a full mempool by a
    /// higher bid gets its fee refunded.
    pub fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError> {
        // An unknown chain is a caller bug, not a network partition; only
        // chains that exist can be unreachable.
        if !self.chains.contains_key(&chain) {
            return Err(WorldError::UnknownChain(chain));
        }
        if !self.is_reachable(chain) {
            return Err(WorldError::ChainUnreachable(chain));
        }
        let fee = tx.fee;
        let kind = match &tx.kind {
            TxKind::Deploy { .. } => Some(FeeKind::Deploy),
            TxKind::Call { .. } => Some(FeeKind::Call),
            TxKind::Transfer { .. } => Some(FeeKind::Transfer),
            TxKind::Coinbase { .. } => None,
        };
        let slot = self.chains.get_mut(&chain).expect("checked above");
        let (txid, evicted) = slot.chain.submit_with_evictions(tx)?;
        for dropped in &evicted {
            self.fees.refund(&dropped.id());
        }
        if let Some(kind) = kind {
            self.fees.bill(chain, txid, kind, fee, self.fee_attribution);
        }
        Ok(txid)
    }

    /// Replace-by-fee: swap a pending transaction for a strictly
    /// higher-fee replacement (the client side of the fee market — a
    /// submitter out-bidding its own stuck transaction). The ledger is
    /// repriced: only the replacement's fee is owed, attributed to whatever
    /// swap the original was billed to.
    pub fn replace_tx(
        &mut self,
        chain: ChainId,
        old: TxId,
        tx: Transaction,
    ) -> Result<TxId, WorldError> {
        if !self.chains.contains_key(&chain) {
            return Err(WorldError::UnknownChain(chain));
        }
        if !self.is_reachable(chain) {
            return Err(WorldError::ChainUnreachable(chain));
        }
        let fee = tx.fee;
        let slot = self.chains.get_mut(&chain).expect("checked above");
        let (txid, _replaced) = slot.chain.replace(&old, tx)?;
        self.fees.reprice(&old, txid, fee);
        Ok(txid)
    }

    /// Derive one chain's congestion snapshot from scratch (no memo).
    fn congestion_uncached(&self, chain: ChainId) -> Result<ChainCongestion, WorldError> {
        let c = self.chain(chain)?;
        if !self.is_reachable(chain) {
            return Err(WorldError::ChainUnreachable(chain));
        }
        Ok(ChainCongestion {
            chain,
            depth: c.mempool_len(),
            capacity: c.mempool_capacity(),
            min_fee: c.mempool_min_fee(),
            fee_floor: c.mempool_fee_floor(),
            base_fee: c.base_fee(),
            block_budget: c.params().max_txs_per_block(),
        })
    }

    /// Observe one chain's mempool congestion (queue depth, base fee, fee
    /// floor, block budget), memoised per chain by (clock, mempool
    /// revision): within one scheduler tick the clock is frozen, so every
    /// poller after the first reads the cached snapshot instead of
    /// re-deriving depth, floor, and base fee. Any mempool mutation
    /// (admission, eviction, mining, base-fee move) bumps the revision and
    /// transparently invalidates the entry — there is no explicit flush.
    ///
    /// Respects injected outages exactly like [`World::submit`]: a
    /// partitioned chain's mempool cannot be observed, so the call fails
    /// with [`WorldError::ChainUnreachable`] for the duration of the
    /// outage window (and [`WorldError::UnknownChain`] for chains that do
    /// not exist — an unknown chain is a caller bug, not a partition).
    pub fn congestion(&mut self, chain: ChainId) -> Result<ChainCongestion, WorldError> {
        let revision = self.chain(chain)?.mempool_revision();
        if !self.is_reachable(chain) {
            return Err(WorldError::ChainUnreachable(chain));
        }
        if let Some(entry) = self.congestion_cache.get(&chain) {
            if entry.now == self.now && entry.revision == revision {
                return Ok(entry.snapshot);
            }
        }
        let snapshot = self.congestion_uncached(chain)?;
        self.congestion_cache.insert(
            chain,
            CongestionCacheEntry { now: self.now, revision, snapshot, marginal: None },
        );
        Ok(snapshot)
    }

    /// The marginal price of next-block inclusion on `chain`: the fee bid
    /// by the pending transaction at the last in-budget mempool rank
    /// (`None` when the queue is shallower than a block). The underlying
    /// probe is an O(block budget) walk of the priority order, so the
    /// result is memoised alongside [`World::congestion`] and recomputed
    /// only when the clock or the mempool revision moves.
    pub fn marginal_fee(&mut self, chain: ChainId) -> Result<Option<Amount>, WorldError> {
        let snapshot = self.congestion(chain)?;
        if let Some(entry) = self.congestion_cache.get(&chain) {
            if let Some(marginal) = entry.marginal {
                return Ok(marginal);
            }
        }
        let rank = snapshot.block_budget.saturating_sub(1);
        let marginal = self.chain(chain)?.mempool_fee_at_rank(rank);
        if let Some(entry) = self.congestion_cache.get_mut(&chain) {
            entry.marginal = Some(marginal);
        }
        Ok(marginal)
    }

    /// Wait until a transaction is buried under `depth` blocks on the
    /// canonical chain (or time out after `max_ms`).
    pub fn wait_for_depth(
        &mut self,
        chain: ChainId,
        txid: TxId,
        depth: u64,
        max_ms: u64,
    ) -> Result<u64, WorldError> {
        self.advance_until(&format!("tx {txid} at depth {depth}"), max_ms, |w| {
            w.chain(chain).ok().and_then(|c| c.tx_depth(&txid)).is_some_and(|d| d >= depth)
        })
    }

    /// Wait until a transaction reaches the chain's configured stable depth.
    pub fn wait_for_stable(
        &mut self,
        chain: ChainId,
        txid: TxId,
        max_ms: u64,
    ) -> Result<u64, WorldError> {
        let depth = self.chain(chain)?.params().stable_depth;
        self.wait_for_depth(chain, txid, depth, max_ms)
    }

    /// Wait until a transaction is included in any canonical block.
    pub fn wait_for_inclusion(
        &mut self,
        chain: ChainId,
        txid: TxId,
        max_ms: u64,
    ) -> Result<u64, WorldError> {
        self.wait_for_depth(chain, txid, 0, max_ms)
    }

    // ------------------------------------------------------------------
    // Evidence construction (Section 4.3)
    // ------------------------------------------------------------------

    /// A stable anchor for `chain`: the canonical block currently buried
    /// under the chain's stable depth.
    pub fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError> {
        let c = self.chain(chain)?;
        let hash = c.stable_block_hash();
        let header = c
            .store()
            .header(&hash)
            .ok_or_else(|| WorldError::EvidenceUnavailable("stable block missing".to_string()))?;
        Ok(ChainAnchor { chain, hash, height: header.height })
    }

    /// Build self-contained inclusion evidence for `txid` relative to
    /// `anchor` (header chain since the anchor + Merkle proof + the full
    /// transaction).
    pub fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError> {
        let c = self.chain(chain)?;
        let (block_hash, index) = c
            .store()
            .find_canonical_tx(&txid)
            .ok_or_else(|| WorldError::EvidenceUnavailable(format!("{txid} not canonical")))?;
        let block = c
            .store()
            .get(&block_hash)
            .ok_or_else(|| WorldError::EvidenceUnavailable("block missing".to_string()))?;
        let tx = block.transactions[index].clone();
        let proof = block.tx_tree().prove(index).ok_or_else(|| {
            WorldError::EvidenceUnavailable("proof construction failed".to_string())
        })?;
        let headers = c
            .headers_since(&anchor.hash)
            .ok_or_else(|| WorldError::EvidenceUnavailable("anchor not canonical".to_string()))?;
        Ok(TxInclusionEvidence { tx, tx_height: block.header.height, headers, proof })
    }

    /// Look up the state tag and burial depth of a contract.
    pub fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)> {
        self.chain(chain).ok()?.contract_state_with_depth(&contract)
    }

    // ------------------------------------------------------------------
    // Sharding (parallel scheduler support)
    // ------------------------------------------------------------------

    /// Split the named chains — and the fee-ledger slices of the named
    /// swaps — out of this world into a self-contained shard world sharing
    /// the same clock. The chains *move* (blocks, mempools, outage
    /// schedules, miner state and all), so a shard can be handed to a
    /// worker thread and run exactly as the full world would have run it;
    /// there is no cross-shard aliasing to synchronise. Δ and the minimum
    /// block interval are pinned to the full world's values on both sides
    /// (see [`World::pin_timing`]).
    ///
    /// The shard's timeline starts empty and its fee ledger holds exactly
    /// the moved slices; [`World::absorb_shard`] folds both back.
    pub fn split_shard(
        &mut self,
        chains: &[ChainId],
        swaps: &[SwapId],
    ) -> Result<World, WorldError> {
        let delta = self.delta_ms();
        let min_interval = self.min_block_interval_ms();
        self.pin_timing(delta, min_interval);
        let mut shard = World::new();
        shard.now = self.now;
        shard.next_chain_id = self.next_chain_id;
        shard.network = self.network;
        shard.pin_timing(delta, min_interval);
        for id in chains {
            let slot = self.chains.remove(id).ok_or(WorldError::UnknownChain(*id))?;
            self.congestion_cache.remove(id);
            shard.chains.insert(*id, slot);
        }
        shard.fees = self.fees.split_off(chains, swaps);
        Ok(shard)
    }

    /// Fold a shard world back in: its chains return with their advanced
    /// state, its timeline events are merged (timestamp order), and its
    /// fee-ledger slices are added back. The shard must have rejoined at
    /// the same clock it is absorbed at.
    pub fn absorb_shard(&mut self, shard: World) {
        assert_eq!(self.now, shard.now, "shards must rejoin at the same clock");
        for (id, slot) in shard.chains {
            self.chains.insert(id, slot);
        }
        self.timeline.merge(&shard.timeline);
        self.fees.absorb(shard.fees);
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Differential integrity check of the incremental state engine: every
    /// chain's materialized canonical state must equal a full from-genesis
    /// replay. Panics (with the offending chain id) on divergence.
    ///
    /// Intended for tests and fault experiments after reorg-heavy scenarios
    /// (fork injection, 51% attacks); it is O(total blocks), so production
    /// drivers should not call it on the hot path.
    pub fn assert_state_integrity(&self) {
        for (id, slot) in &self.chains {
            let oracle = slot.chain.replay_state_from_genesis();
            assert!(
                slot.chain.state() == &oracle,
                "incremental state of {id} diverged from the replay oracle"
            );
        }
    }
}

// The parallel scheduler moves whole worlds (shards) and `&mut ChainSlot`s
// across scoped threads; keep the thread-safety of the simulation core a
// compile-time fact rather than an accident of field types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<World>();
    assert_send_sync::<Blockchain>();
    assert_send_sync::<ChainCongestion>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ac3_chain::TxOutput;
    use ac3_crypto::KeyPair;

    fn addr(seed: &[u8]) -> Address {
        Address::from(KeyPair::from_seed(seed).public())
    }

    fn fast_params(name: &str) -> ChainParams {
        let mut p = ChainParams::test(name);
        p.block_interval_ms = 1_000;
        p.stable_depth = 3;
        p
    }

    #[test]
    fn chains_mine_at_their_intervals() {
        let mut world = World::new();
        let fast = world.add_chain(fast_params("fast"), &[]);
        let mut slow_params = fast_params("slow");
        slow_params.block_interval_ms = 5_000;
        let slow = world.add_chain(slow_params, &[]);

        world.advance(10_000);
        assert_eq!(world.chain(fast).unwrap().height(), 10);
        assert_eq!(world.chain(slow).unwrap().height(), 2);
        assert_eq!(world.now(), 10_000);
    }

    #[test]
    fn delta_is_driven_by_the_slowest_chain() {
        let mut world = World::new();
        world.add_chain(fast_params("fast"), &[]);
        let mut slow = fast_params("slow");
        slow.block_interval_ms = 10_000;
        slow.stable_depth = 5;
        world.add_chain(slow, &[]);
        assert_eq!(world.delta_ms(), 10_000 * 6);
    }

    #[test]
    fn submit_wait_and_evidence_round_trip() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let anchor = world.anchor(chain).unwrap();

        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &bob, 10, 1).unwrap();
        let txid = world.submit(chain, kp.transfer(inputs, outputs, 1)).unwrap();

        world.wait_for_stable(chain, txid, 60_000).unwrap();
        assert!(world.chain(chain).unwrap().tx_is_stable(&txid));

        let evidence = world.tx_evidence_since(chain, &anchor, txid).unwrap();
        evidence.verify(&anchor, 3).unwrap();
    }

    #[test]
    fn outage_blocks_submissions_until_it_lifts() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        world.schedule_outage(chain, OutageWindow { from: 0, until: 5_000 }).unwrap();

        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let tx = kp.transfer(vec![], vec![TxOutput::new(alice, 0)], 0);
        assert!(matches!(
            world.submit(chain, tx.clone()).unwrap_err(),
            WorldError::ChainUnreachable(_)
        ));
        world.advance(5_000);
        assert!(world.is_reachable(chain));
        world.submit(chain, tx).unwrap();
    }

    #[test]
    fn advance_until_times_out() {
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        let err = world
            .advance_until("the impossible", 3_000, |w| w.chain(chain).unwrap().height() > 1_000)
            .unwrap_err();
        assert!(matches!(err, WorldError::Timeout { .. }));
    }

    #[test]
    fn fork_injection_creates_competing_branch() {
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        world.advance(6_000); // height 6
        let tip_before = world.chain(chain).unwrap().tip();
        // Fork 3 below the tip with a branch long enough to win.
        let branch = world.inject_fork(chain, 3, 5).unwrap();
        assert_eq!(branch.len(), 5);
        let tip_after = world.chain(chain).unwrap().tip();
        assert_ne!(tip_before, tip_after, "attacker branch becomes canonical");
        assert_eq!(world.chain(chain).unwrap().height(), 8);
        // The reorg must leave every chain's incremental state identical to
        // a full replay.
        world.assert_state_integrity();
    }

    #[test]
    fn advance_blocks_waits_for_exactly_n() {
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        world.advance_blocks(chain, 4).unwrap();
        assert!(world.chain(chain).unwrap().height() >= 4);
    }

    #[test]
    fn rejected_submissions_pay_no_fees() {
        // Regression: fees used to be recorded before `chain.submit` could
        // fail, so transactions the mempool rejected still inflated the
        // ledger.
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 5).unwrap();
        let mut tx = kp.transfer(inputs, outputs, 5);
        let good = tx.clone();

        // Invalid signature: tampering with the fee after signing.
        tx.fee = 7;
        assert!(world.submit(chain, tx).is_err());
        assert_eq!(world.fees.total_fees(), 0, "rejected tx must not be billed");

        // A valid submission is billed exactly once, and resubmitting the
        // same transaction (mempool duplicate) adds nothing.
        world.submit(chain, good.clone()).unwrap();
        assert_eq!(world.fees.total_fees(), 5);
        assert!(world.submit(chain, good).is_err());
        assert_eq!(world.fees.total_fees(), 5, "duplicate tx must not be billed twice");
    }

    #[test]
    fn unknown_chain_is_not_a_network_partition() {
        // Regression: submitting to a nonexistent chain used to surface as
        // `ChainUnreachable` because `is_reachable` returns false for
        // unknown ids.
        let mut world = World::new();
        let ghost = ChainId(99);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let tx = kp.transfer(vec![], vec![], 0);
        assert_eq!(world.submit(ghost, tx).unwrap_err(), WorldError::UnknownChain(ghost));
        assert_eq!(world.inject_fork(ghost, 1, 1).unwrap_err(), WorldError::UnknownChain(ghost));
        assert!(!world.is_reachable(ghost), "unknown chains are still not reachable");
    }

    #[test]
    fn fee_attribution_routes_fees_to_the_active_swap() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        world.set_fee_attribution(Some(SwapId(7)));
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 3).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 3)).unwrap();
        world.set_fee_attribution(None);
        world.advance(1_000);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 2).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 2)).unwrap();

        assert_eq!(world.fees.fees_for_swap(SwapId(7)), 3);
        assert_eq!(world.fees.fees_for_swap(SwapId(8)), 0);
        assert_eq!(world.fees.total_fees(), 5, "attribution never double-counts totals");
    }

    #[test]
    fn replace_by_fee_reprices_the_ledger() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        world.set_fee_attribution(Some(SwapId(3)));
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 2).unwrap();
        let old = world.submit(chain, kp.transfer(inputs.clone(), outputs, 2)).unwrap();
        assert_eq!(world.fees.total_fees(), 2);

        // Re-bid the same payment at a higher fee: only the new fee is
        // owed, attributed to the same swap.
        let rebid = kp.transfer(inputs, vec![ac3_chain::TxOutput::new(alice, 1)], 5);
        let new = world.replace_tx(chain, old, rebid).unwrap();
        assert_ne!(new, old);
        assert_eq!(world.fees.total_fees(), 5, "old fee refunded, new fee billed");
        assert_eq!(world.fees.fees_for_swap(SwapId(3)), 5);
        assert!(!world.chain(chain).unwrap().mempool_contains(&old));
        assert!(world.chain(chain).unwrap().mempool_contains(&new));

        // A non-increasing re-bid is rejected and the ledger untouched.
        let lower = kp.transfer(vec![], vec![], 1);
        assert!(world.replace_tx(chain, new, lower).is_err());
        assert_eq!(world.fees.total_fees(), 5);
    }

    #[test]
    fn eviction_refunds_the_priced_out_transaction() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let mut params = fast_params("c");
        params.mempool_capacity = 1;
        let chain = world.add_chain(params, &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);

        world.set_fee_attribution(Some(SwapId(1)));
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 2).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 2)).unwrap();
        world.set_fee_attribution(Some(SwapId(2)));
        // A different (unfunded-input) transfer with a higher fee evicts
        // swap 1's transaction from the single-slot pool.
        let rich = kp.transfer(
            vec![ac3_chain::OutPoint::new(TxId(ac3_crypto::Hash256::digest(b"x")), 0)],
            vec![],
            9,
        );
        world.submit(chain, rich).unwrap();
        world.set_fee_attribution(None);

        assert_eq!(world.fees.fees_for_swap(SwapId(1)), 0, "evicted fee refunded");
        assert_eq!(world.fees.fees_for_swap(SwapId(2)), 9);
        assert_eq!(world.fees.total_fees(), 9);
    }

    #[test]
    fn congestion_snapshot_reports_queue_state() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let mut params = fast_params("c");
        params.mempool_capacity = 2;
        params.tps = 1;
        let chain = world.add_chain(params, &[(alice, 100)]);

        let empty = world.congestion(chain).unwrap();
        assert_eq!(empty.depth, 0);
        assert_eq!(empty.capacity, 2);
        assert_eq!(empty.fee_floor, 0);
        assert_eq!(empty.min_fee, None);
        assert_eq!(empty.block_budget, 1, "1 tps × 1 s blocks");

        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 3).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 3)).unwrap();
        // A second pending tx on a distinct (synthetic) input — the mempool
        // checks double-claims, not UTXO existence.
        let other_input =
            vec![ac3_chain::OutPoint::new(TxId(ac3_crypto::Hash256::digest(b"other")), 0)];
        world.submit(chain, kp.transfer(other_input, vec![], 7)).unwrap();

        let full = world.congestion(chain).unwrap();
        assert_eq!(full.depth, 2);
        assert_eq!(full.min_fee, Some(3));
        assert_eq!(full.fee_floor, 4, "must out-bid the cheapest pending tx");
        assert_eq!(full.base_fee, 0, "static schedule: no base fee");
        assert_eq!(
            world.chain(chain).unwrap().mempool_fee_at_rank(full.block_budget - 1),
            Some(7),
            "1-slot blocks: the top bid is the marginal price of inclusion"
        );
        assert_eq!(
            world.congestion(ChainId(99)).unwrap_err(),
            WorldError::UnknownChain(ChainId(99))
        );
    }

    #[test]
    fn congestion_is_unobservable_during_an_outage_window() {
        // Pinned semantics: observing a partitioned chain's mempool fails
        // with `ChainUnreachable` exactly like `submit` does, over exactly
        // the half-open window [from, until).
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[]);
        world.schedule_outage(chain, OutageWindow { from: 2_000, until: 5_000 }).unwrap();

        assert!(world.congestion(chain).is_ok(), "before the window");
        world.advance(2_000);
        assert_eq!(
            world.congestion(chain).unwrap_err(),
            WorldError::ChainUnreachable(chain),
            "window start is inclusive"
        );
        world.advance(2_999);
        assert!(world.congestion(chain).is_err(), "last covered instant");
        world.advance(1);
        assert!(world.congestion(chain).is_ok(), "window end is exclusive");
    }

    #[test]
    fn congestion_surfaces_the_dynamic_base_fee() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let mut params = fast_params("c");
        params.tps = 4;
        params.base_fee_schedule = ac3_chain::BaseFeeSchedule::eip1559_like();
        let chain = world.add_chain(params, &vec![(alice, 100); 16]);
        assert_eq!(world.congestion(chain).unwrap().base_fee, 1, "schedule floor");
        assert_eq!(world.congestion(chain).unwrap().fee_floor, 1, "floor folds in the base fee");

        // Four full blocks of demand push the base fee off the floor. Each
        // transfer spends its own genesis coinbase so the pending demand
        // never conflicts in the mempool.
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let mut spent = 0u64;
        for _ in 0..4 {
            for _ in 0..4 {
                let input =
                    ac3_chain::OutPoint::new(ac3_chain::coinbase(alice, 100, spent).id(), 0);
                spent += 1;
                let fee = world.congestion(chain).unwrap().fee_floor;
                let change = vec![ac3_chain::TxOutput::new(alice, 100 - fee)];
                world.submit(chain, kp.transfer(vec![input], change, fee)).unwrap();
            }
            world.advance(1_000);
        }
        let snapshot = world.congestion(chain).unwrap();
        assert!(snapshot.base_fee > 1, "sustained full blocks raised the base fee");
        assert_eq!(snapshot.fee_floor, snapshot.base_fee);
    }

    /// Differential check: advancing with per-chain parallel loops must be
    /// bitwise identical to the serial global-event-order loop, at every
    /// thread count (including more threads than chains).
    #[test]
    fn advance_parallel_matches_serial_bitwise() {
        let alice = addr(b"alice");
        let build = || {
            let mut world = World::new();
            for i in 0..5u64 {
                let mut p = fast_params(&format!("c{i}"));
                p.block_interval_ms = 700 + 300 * i; // deliberately ragged intervals
                world.add_chain(p, &[(alice, 100)]);
            }
            let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
            for id in world.chain_ids() {
                let (inputs, outputs) =
                    world.chain(id).unwrap().plan_payment(&alice, &alice, 1, 2).unwrap();
                world.submit(id, kp.transfer(inputs, outputs, 2)).unwrap();
            }
            world
        };

        let mut serial = build();
        serial.advance(9_999);
        for threads in [1, 2, 4, 8] {
            let mut parallel = build();
            parallel.advance_parallel(9_999, threads);
            assert_eq!(parallel.now(), serial.now());
            for id in serial.chain_ids() {
                let s = serial.chain(id).unwrap();
                let p = parallel.chain(id).unwrap();
                assert_eq!(s.tip(), p.tip(), "{id} tip diverged at {threads} threads");
                assert_eq!(s.height(), p.height());
                assert_eq!(s.state(), p.state(), "{id} state diverged at {threads} threads");
                assert_eq!(s.mempool_len(), p.mempool_len());
            }
        }
    }

    #[test]
    fn congestion_cache_tracks_clock_and_mempool_revision() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);

        let empty = world.congestion(chain).unwrap();
        assert_eq!(
            empty,
            world.congestion_uncached(chain).unwrap(),
            "cache agrees with the derivation"
        );
        assert_eq!(world.marginal_fee(chain).unwrap(), None);

        // A submission at the same clock must invalidate via the revision.
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 3).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 3)).unwrap();
        let after_submit = world.congestion(chain).unwrap();
        assert_eq!(after_submit.depth, 1, "stale snapshot would still say empty");
        assert_eq!(after_submit, world.congestion_uncached(chain).unwrap());

        // Mining drains the pool; the clock moved, so the cache refreshes.
        world.advance(1_000);
        let after_block = world.congestion(chain).unwrap();
        assert_eq!(after_block.depth, 0);
        assert_eq!(after_block, world.congestion_uncached(chain).unwrap());
    }

    #[test]
    fn marginal_fee_cache_reports_the_last_in_budget_rank() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let mut params = fast_params("c");
        params.tps = 2; // block budget 2 at 1 s blocks
        let chain = world.add_chain(params, &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        for (tag, fee) in [(1u8, 9u64), (2, 7), (3, 2)] {
            let input =
                vec![ac3_chain::OutPoint::new(TxId(ac3_crypto::Hash256::digest(&[tag])), 0)];
            world.submit(chain, kp.transfer(input, vec![], fee)).unwrap();
        }
        assert_eq!(world.marginal_fee(chain).unwrap(), Some(7));
        // Cached replay at the same (clock, revision).
        assert_eq!(world.marginal_fee(chain).unwrap(), Some(7));
        // A higher bid displaces the marginal rank; the revision refreshes
        // the memo.
        let input = vec![ac3_chain::OutPoint::new(TxId(ac3_crypto::Hash256::digest(&[4u8])), 0)];
        world.submit(chain, kp.transfer(input, vec![], 8)).unwrap();
        assert_eq!(world.marginal_fee(chain).unwrap(), Some(8));
    }

    #[test]
    fn shard_split_and_absorb_round_trips_state() {
        let alice = addr(b"alice");
        let bob = addr(b"bob");
        let mut world = World::new();
        let c0 = world.add_chain(fast_params("c0"), &[(alice, 100)]);
        let mut slow = fast_params("c1");
        slow.block_interval_ms = 10_000;
        slow.stable_depth = 5;
        let c1 = world.add_chain(slow, &[(bob, 100)]);
        let full_delta = world.delta_ms();
        let full_interval = world.min_block_interval_ms();

        world.set_fee_attribution(Some(SwapId(1)));
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(c0).unwrap().plan_payment(&alice, &alice, 1, 4).unwrap();
        let billed = world.submit(c0, kp.transfer(inputs, outputs, 4)).unwrap();
        world.set_fee_attribution(None);

        let mut shard = world.split_shard(&[c0], &[SwapId(1)]).unwrap();
        // The fast chain moved, yet both sides keep the full world's timing.
        assert_eq!(shard.delta_ms(), full_delta, "shard pins the full world's Δ");
        assert_eq!(world.delta_ms(), full_delta, "residual master pins Δ too");
        assert_eq!(shard.min_block_interval_ms(), full_interval);
        assert!(world.chain(c0).is_err(), "the chain moved out");
        assert!(shard.chain(c1).is_err(), "only the named chains moved");
        // The billing record moved with the chain: the shard can refund it.
        assert!(shard.fees.is_billed(&billed));
        assert!(!world.fees.is_billed(&billed));
        assert_eq!(shard.fees.fees_for_swap(SwapId(1)), 4);
        assert_eq!(world.fees.total_fees(), 0);

        // Both halves advance in lockstep; the shard mines its chain.
        shard.advance(3_000);
        world.advance(3_000);
        let height = shard.chain(c0).unwrap().height();
        assert_eq!(height, 3);

        world.absorb_shard(shard);
        assert_eq!(world.chain(c0).unwrap().height(), height, "advanced state returned");
        assert_eq!(world.fees.fees_for_swap(SwapId(1)), 4);
        assert_eq!(world.fees.total_fees(), 4);
        assert!(world.fees.is_billed(&billed));
        assert_eq!(world.chain_ids(), vec![c0, c1]);
    }

    #[test]
    #[should_panic(expected = "same clock")]
    fn absorbing_a_shard_at_a_different_clock_panics() {
        let mut world = World::new();
        let c0 = world.add_chain(fast_params("c0"), &[]);
        world.add_chain(fast_params("c1"), &[]);
        let mut shard = world.split_shard(&[c0], &[]).unwrap();
        shard.advance(1_000);
        world.absorb_shard(shard);
    }

    #[test]
    fn fee_ledger_tracks_submissions() {
        let alice = addr(b"alice");
        let mut world = World::new();
        let chain = world.add_chain(fast_params("c"), &[(alice, 100)]);
        let mut kp = ac3_chain::TxBuilder::new(KeyPair::from_seed(b"alice"), 0);
        let (inputs, outputs) =
            world.chain(chain).unwrap().plan_payment(&alice, &alice, 1, 1).unwrap();
        world.submit(chain, kp.transfer(inputs, outputs, 1)).unwrap();
        assert_eq!(world.fees.total_fees(), 1);
    }
}
