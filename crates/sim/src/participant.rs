//! Participants: the end users of the application layer.
//!
//! A participant owns a key pair (their identity on every chain), signs
//! transactions through a per-chain [`ac3_chain::TxBuilder`], and may be
//! subjected to crash faults — the failure mode the paper's motivating
//! example turns on ("an honest participant who fails to execute a smart
//! contract on time due to a crash failure ... might end up losing her
//! assets").

use crate::audit::AuditScope;
use ac3_chain::{Address, ChainId, Timestamp, TxBuilder};
use ac3_crypto::KeyPair;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A half-open interval `[from, until)` of simulated time during which a
/// participant is crashed and cannot take any action: down at `from`,
/// recovered at `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// Crash start (inclusive).
    pub from: Timestamp,
    /// Recovery time (exclusive); `u64::MAX` for a permanent crash.
    pub until: Timestamp,
}

impl CrashWindow {
    /// A crash from `from` that never recovers.
    pub fn permanent(from: Timestamp) -> Self {
        CrashWindow { from, until: Timestamp::MAX }
    }

    /// Whether the participant is down at `now`.
    pub fn covers(&self, now: Timestamp) -> bool {
        now >= self.from && now < self.until
    }
}

/// A simulated end user.
pub struct Participant {
    /// Human-readable name ("alice", "bob", ...).
    pub name: String,
    keypair: KeyPair,
    crash_windows: Vec<CrashWindow>,
    /// Per-chain transaction builders (to keep nonces distinct per chain).
    builders: BTreeMap<ChainId, TxBuilder>,
}

impl fmt::Debug for Participant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Participant")
            .field("name", &self.name)
            .field("address", &self.address())
            .field("crash_windows", &self.crash_windows)
            .finish()
    }
}

impl Participant {
    /// Create a participant with a deterministic key derived from its name.
    pub fn new(name: &str) -> Self {
        Participant {
            name: name.to_string(),
            keypair: KeyPair::from_seed(name.as_bytes()),
            crash_windows: Vec::new(),
            builders: BTreeMap::new(),
        }
    }

    /// The participant's key pair.
    pub fn keypair(&self) -> KeyPair {
        self.keypair
    }

    /// The participant's address (identical on every chain; identities are
    /// public keys, Section 2.2).
    pub fn address(&self) -> Address {
        Address::from(self.keypair.public())
    }

    /// Schedule a crash window.
    pub fn schedule_crash(&mut self, window: CrashWindow) {
        self.crash_windows.push(window);
    }

    /// Whether the participant can act at `now`.
    pub fn is_available(&self, now: Timestamp) -> bool {
        !self.crash_windows.iter().any(|w| w.covers(now))
    }

    /// The transaction builder for `chain`, created lazily. The nonce seed
    /// mixes the chain id so the same participant produces distinct ids on
    /// different chains.
    pub fn builder(&mut self, chain: ChainId) -> &mut TxBuilder {
        let keypair = self.keypair;
        self.builders
            .entry(chain)
            .or_insert_with(|| TxBuilder::new(keypair, (chain.as_u32() as u64) << 32))
    }
}

/// A registry of participants keyed by name.
#[derive(Debug, Default)]
pub struct ParticipantSet {
    participants: BTreeMap<String, Participant>,
    /// Active footprint-audit scope: while set (the driver brackets each
    /// audited machine poll with [`ParticipantSet::begin_audit`] /
    /// [`ParticipantSet::end_audit`]), every single-participant lookup
    /// panics if the resolved actor is outside the scope. Deliberately not
    /// part of the set's value semantics: [`ParticipantSet::split_off`] and
    /// [`ParticipantSet::absorb`] ignore it.
    audit: Option<AuditScope>,
}

impl ParticipantSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start auditing lookups against `scope` (see [`AuditScope`]); every
    /// `get`/`by_address` family call until [`ParticipantSet::end_audit`]
    /// panics if it resolves to an undeclared actor.
    pub fn begin_audit(&mut self, scope: AuditScope) {
        self.audit = Some(scope);
    }

    /// Stop auditing lookups.
    pub fn end_audit(&mut self) {
        self.audit = None;
    }

    /// Panic if the audit scope is active and does not declare `p`.
    fn check_audit(&self, p: &Participant) {
        if let Some(scope) = &self.audit {
            scope.check_actor(p.address(), &p.name);
        }
    }

    /// Add a participant by name, returning its address.
    pub fn add(&mut self, name: &str) -> Address {
        let participant = Participant::new(name);
        let address = participant.address();
        self.participants.insert(name.to_string(), participant);
        address
    }

    /// Borrow a participant.
    pub fn get(&self, name: &str) -> Option<&Participant> {
        let p = self.participants.get(name);
        if let Some(p) = p {
            self.check_audit(p);
        }
        p
    }

    /// Mutably borrow a participant.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Participant> {
        if let Some(p) = self.participants.get(name) {
            self.check_audit(p);
        }
        self.participants.get_mut(name)
    }

    /// Addresses of every participant, in name order.
    pub fn addresses(&self) -> Vec<Address> {
        self.participants.values().map(|p| p.address()).collect()
    }

    /// Find the participant owning `address`.
    pub fn by_address(&self, address: &Address) -> Option<&Participant> {
        let p = self.participants.values().find(|p| p.address() == *address);
        if let Some(p) = p {
            self.check_audit(p);
        }
        p
    }

    /// Mutably find the participant owning `address`.
    pub fn by_address_mut(&mut self, address: &Address) -> Option<&mut Participant> {
        if let Some(p) = self.participants.values().find(|p| p.address() == *address) {
            self.check_audit(p);
        }
        self.participants.values_mut().find(|p| p.address() == *address)
    }

    /// The name of the participant owning `address`.
    pub fn name_of(&self, address: &Address) -> Option<&str> {
        self.by_address(address).map(|p| p.name.as_str())
    }

    /// Names in deterministic order.
    pub fn names(&self) -> Vec<String> {
        self.participants.keys().cloned().collect()
    }

    /// Move the participants owning the given addresses out into their own
    /// set. The participants themselves move — per-chain transaction
    /// builders and their nonce state travel along — so a shard worker can
    /// sign on behalf of its actors exactly as the full set would have,
    /// and [`ParticipantSet::absorb`] returns them with the nonces they
    /// advanced to.
    pub fn split_off(&mut self, addresses: &[Address]) -> ParticipantSet {
        let wanted: std::collections::BTreeSet<Address> = addresses.iter().copied().collect();
        let names: Vec<String> = self
            .participants
            .iter()
            .filter(|(_, p)| wanted.contains(&p.address()))
            .map(|(name, _)| name.clone())
            .collect();
        let mut out = ParticipantSet::new();
        for name in names {
            if let Some(p) = self.participants.remove(&name) {
                out.participants.insert(name, p);
            }
        }
        out
    }

    /// Fold a split-off set back in (names are globally unique, so this
    /// never overwrites a live participant).
    pub fn absorb(&mut self, other: ParticipantSet) {
        self.participants.extend(other.participants);
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_identity_from_name() {
        let a1 = Participant::new("alice");
        let a2 = Participant::new("alice");
        let b = Participant::new("bob");
        assert_eq!(a1.address(), a2.address());
        assert_ne!(a1.address(), b.address());
    }

    #[test]
    fn crash_windows_control_availability() {
        let mut p = Participant::new("bob");
        assert!(p.is_available(0));
        p.schedule_crash(CrashWindow { from: 100, until: 200 });
        assert!(p.is_available(99));
        assert!(!p.is_available(100));
        assert!(!p.is_available(199));
        assert!(p.is_available(200));
    }

    #[test]
    fn permanent_crash_never_recovers() {
        let mut p = Participant::new("bob");
        p.schedule_crash(CrashWindow::permanent(50));
        assert!(p.is_available(49));
        assert!(!p.is_available(u64::MAX - 1));
    }

    #[test]
    fn multiple_crash_windows() {
        let mut p = Participant::new("carol");
        p.schedule_crash(CrashWindow { from: 10, until: 20 });
        p.schedule_crash(CrashWindow { from: 30, until: 40 });
        assert!(!p.is_available(15));
        assert!(p.is_available(25));
        assert!(!p.is_available(35));
    }

    #[test]
    fn per_chain_builders_have_distinct_nonces() {
        let mut p = Participant::new("alice");
        let tx_chain0 = p.builder(ChainId(0)).transfer(vec![], vec![], 0);
        let tx_chain1 = p.builder(ChainId(1)).transfer(vec![], vec![], 0);
        assert_ne!(tx_chain0.id(), tx_chain1.id());
    }

    #[test]
    fn participant_set_registry() {
        let mut set = ParticipantSet::new();
        let alice = set.add("alice");
        let bob = set.add("bob");
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("alice").unwrap().address(), alice);
        assert_eq!(set.addresses(), vec![alice, bob]);
        assert_eq!(set.names(), vec!["alice".to_string(), "bob".to_string()]);
        assert!(set.get("nobody").is_none());
    }
}
