//! The narrowed machine-facing chain API.
//!
//! Protocol state machines used to poke the simulator directly through
//! `&mut World`; [`ChainApi`] is the explicit seam instead: everything a
//! swap machine may do to a chain — submit, replace-by-fee, probe
//! congestion, observe tips and evidence, record timeline events, and (for
//! adversary machines) inject faults — and nothing else. No clock
//! advancement, no shard surgery, no direct ledger or mempool access.
//!
//! Three implementations share the surface:
//!
//! * [`World`] itself — so existing call sites (tests, the client crate,
//!   benches) that hold a `&mut World` coerce to `&mut dyn ChainApi`
//!   unchanged;
//! * [`DirectApi`] — an explicit synchronous wrapper, the default path and
//!   the serial reference semantics;
//! * [`NetworkedApi`] — routes submissions and re-bids through the
//!   per-chain `Link`s as in-flight messages with seeded
//!   delivery delay and drop probability; replies are optimistic (the
//!   transaction id is client-computable), so a machine can be mid-flight
//!   on a submit when it next polls.
//!
//! Reads (`chain`, `anchor`, `tx_evidence_since`, `contract_state`, …) stay
//! synchronous under every implementation: they model a local light-client
//! view the machine already holds. The *messages* of the network model are
//! the mempool mutations — submit and replace — plus the congestion probe,
//! which is counted per link.

use crate::faults::OutageWindow;
use crate::metrics::EventKind;
use crate::network::Payload;
use crate::world::{ChainCongestion, World, WorldError};
use ac3_chain::{Amount, BlockHash, Blockchain, ChainId, ContractId, Timestamp, Transaction, TxId};
use ac3_contracts::{ChainAnchor, TxInclusionEvidence};

/// Everything a swap machine may ask of the chains it coordinates.
///
/// Semantics are pinned by [`World`]'s inherent methods of the same names;
/// see each one for details. The contract every implementation upholds:
/// *machines never advance the clock*, and a seeded run is deterministic —
/// two polls at the same instant against the same state return the same
/// answers.
pub trait ChainApi {
    /// Current simulated time in milliseconds.
    fn now(&self) -> Timestamp;

    /// The paper's Δ: the time to publish on any chain and have the
    /// publication publicly recognised.
    fn delta_ms(&self) -> u64;

    /// The smallest block interval across chains — the natural polling
    /// step for waits on on-chain conditions.
    fn min_block_interval_ms(&self) -> u64;

    /// Whether a chain is reachable right now (no partition window covers
    /// the current instant).
    fn is_reachable(&self, chain: ChainId) -> bool;

    /// Borrow a chain for reading (tip, heights, balances, mempool
    /// introspection).
    fn chain(&self, chain: ChainId) -> Result<&Blockchain, WorldError>;

    /// A stable anchor for `chain` (the canonical block at stable depth).
    fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError>;

    /// Self-contained inclusion evidence for `txid` relative to `anchor`.
    fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError>;

    /// The state tag and burial depth of a contract.
    fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)>;

    /// Whether the world's fee ledger currently bills `txid`.
    fn is_billed(&self, txid: &TxId) -> bool;

    /// Whether a message carrying `txid` is still in flight to `chain`.
    /// Always false for synchronous implementations.
    fn tx_in_flight(&self, _chain: ChainId, _txid: &TxId) -> bool {
        false
    }

    /// Observe one chain's mempool congestion, memoised per (clock,
    /// mempool revision).
    fn congestion(&mut self, chain: ChainId) -> Result<ChainCongestion, WorldError>;

    /// The marginal price of next-block inclusion on `chain`, memoised
    /// alongside [`ChainApi::congestion`].
    fn marginal_fee(&mut self, chain: ChainId) -> Result<Option<Amount>, WorldError>;

    /// Submit a transaction. Synchronous implementations return the
    /// admission result; networked ones return the (client-computable)
    /// transaction id optimistically once the message is in flight.
    fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError>;

    /// Replace-by-fee: out-bid a pending transaction with a strictly
    /// higher-fee replacement.
    fn replace_tx(
        &mut self,
        chain: ChainId,
        old: TxId,
        tx: Transaction,
    ) -> Result<TxId, WorldError>;

    /// Record a protocol-level event on the world's global timeline.
    fn record(&mut self, at: Timestamp, kind: EventKind);

    /// Make a chain unreachable during a window of simulated time
    /// (adversary machines; routed through the link layer when a network
    /// is attached).
    fn schedule_outage(&mut self, chain: ChainId, window: OutageWindow) -> Result<(), WorldError>;

    /// Mine a competing branch forking `fork_depth` below the tip
    /// (adversary machines; the Section 6.3 attacker).
    fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError>;
}

impl ChainApi for World {
    fn now(&self) -> Timestamp {
        World::now(self)
    }

    fn delta_ms(&self) -> u64 {
        World::delta_ms(self)
    }

    fn min_block_interval_ms(&self) -> u64 {
        World::min_block_interval_ms(self)
    }

    fn is_reachable(&self, chain: ChainId) -> bool {
        World::is_reachable(self, chain)
    }

    fn chain(&self, chain: ChainId) -> Result<&Blockchain, WorldError> {
        World::chain(self, chain)
    }

    fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError> {
        World::anchor(self, chain)
    }

    fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError> {
        World::tx_evidence_since(self, chain, anchor, txid)
    }

    fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)> {
        World::contract_state(self, chain, contract)
    }

    fn is_billed(&self, txid: &TxId) -> bool {
        self.fees.is_billed(txid)
    }

    fn congestion(&mut self, chain: ChainId) -> Result<ChainCongestion, WorldError> {
        World::congestion(self, chain)
    }

    fn marginal_fee(&mut self, chain: ChainId) -> Result<Option<Amount>, WorldError> {
        World::marginal_fee(self, chain)
    }

    fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError> {
        World::submit(self, chain, tx)
    }

    fn replace_tx(
        &mut self,
        chain: ChainId,
        old: TxId,
        tx: Transaction,
    ) -> Result<TxId, WorldError> {
        World::replace_tx(self, chain, old, tx)
    }

    fn record(&mut self, at: Timestamp, kind: EventKind) {
        self.timeline.record(at, kind);
    }

    fn schedule_outage(&mut self, chain: ChainId, window: OutageWindow) -> Result<(), WorldError> {
        World::schedule_outage(self, chain, window)
    }

    fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError> {
        World::inject_fork(self, chain, fork_depth, length)
    }
}

/// The synchronous [`ChainApi`]: every call is applied to the [`World`]
/// immediately, exactly as machines did when they held `&mut World`. The
/// default path, and the reference semantics the networked path must match
/// bitwise under a zero profile.
pub struct DirectApi<'a> {
    world: &'a mut World,
}

impl<'a> DirectApi<'a> {
    /// Wrap a world for direct synchronous access.
    pub fn new(world: &'a mut World) -> Self {
        DirectApi { world }
    }
}

impl ChainApi for DirectApi<'_> {
    fn now(&self) -> Timestamp {
        self.world.now()
    }

    fn delta_ms(&self) -> u64 {
        self.world.delta_ms()
    }

    fn min_block_interval_ms(&self) -> u64 {
        self.world.min_block_interval_ms()
    }

    fn is_reachable(&self, chain: ChainId) -> bool {
        self.world.is_reachable(chain)
    }

    fn chain(&self, chain: ChainId) -> Result<&Blockchain, WorldError> {
        self.world.chain(chain)
    }

    fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError> {
        self.world.anchor(chain)
    }

    fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError> {
        self.world.tx_evidence_since(chain, anchor, txid)
    }

    fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)> {
        self.world.contract_state(chain, contract)
    }

    fn is_billed(&self, txid: &TxId) -> bool {
        self.world.fees.is_billed(txid)
    }

    fn congestion(&mut self, chain: ChainId) -> Result<ChainCongestion, WorldError> {
        self.world.congestion(chain)
    }

    fn marginal_fee(&mut self, chain: ChainId) -> Result<Option<Amount>, WorldError> {
        self.world.marginal_fee(chain)
    }

    fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError> {
        self.world.submit(chain, tx)
    }

    fn replace_tx(
        &mut self,
        chain: ChainId,
        old: TxId,
        tx: Transaction,
    ) -> Result<TxId, WorldError> {
        self.world.replace_tx(chain, old, tx)
    }

    fn record(&mut self, at: Timestamp, kind: EventKind) {
        self.world.timeline.record(at, kind);
    }

    fn schedule_outage(&mut self, chain: ChainId, window: OutageWindow) -> Result<(), WorldError> {
        self.world.schedule_outage(chain, window)
    }

    fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError> {
        self.world.inject_fork(chain, fork_depth, length)
    }
}

/// The message-routed [`ChainApi`]: submissions and re-bids become
/// `Message`s on the target chain's link, with delivery
/// delay and drop probability sampled at send time from the world's
/// attached [`crate::network::NetworkProfile`].
///
/// * A **zero-delay, undropped** message is applied inline — bitwise
///   identical to [`DirectApi`], including the admission result.
/// * A **delayed** message returns `Ok(tx.id())` optimistically after the
///   synchronous unknown-chain / reachability checks; admission happens at
///   delivery inside `World::advance`, and a rejection there counts as a
///   nack on the link (the bid book recovers through its eviction
///   re-entry path).
/// * A **dropped** message also returns optimistically — the client cannot
///   know the network ate it; it is counted on the link and recovered the
///   same way.
///
/// Requires [`World::attach_network`] to have been called; constructing a
/// `NetworkedApi` over a world without links panics on first send.
pub struct NetworkedApi<'a> {
    world: &'a mut World,
}

impl<'a> NetworkedApi<'a> {
    /// Wrap a world whose network is attached.
    pub fn new(world: &'a mut World) -> Self {
        NetworkedApi { world }
    }

    /// Common send path for submit / replace messages.
    fn send(&mut self, chain: ChainId, payload: Payload) -> Result<TxId, WorldError> {
        if self.world.chain(chain).is_err() {
            return Err(WorldError::UnknownChain(chain));
        }
        if !self.world.is_reachable(chain) {
            return Err(WorldError::ChainUnreachable(chain));
        }
        let profile =
            *self.world.network_profile().expect("NetworkedApi requires World::attach_network");
        let now = self.world.now();
        let attribution = self.world.fee_attribution();
        let link = self.world.link_mut(chain).expect("attached network creates every link");
        let (delay, dropped) = link.sample(&profile);
        match &payload {
            Payload::Submit { .. } => link.stats.submits += 1,
            Payload::Replace { .. } => link.stats.replaces += 1,
        }
        if dropped {
            link.stats.dropped += 1;
            let txid = match &payload {
                Payload::Submit { tx } | Payload::Replace { tx, .. } => tx.id(),
            };
            return Ok(txid);
        }
        if delay == 0 {
            // Apply inline: the zero-latency path must be bitwise identical
            // to DirectApi, including synchronous admission errors.
            let result = match payload {
                Payload::Submit { tx } => self.world.submit(chain, tx),
                Payload::Replace { old, tx } => self.world.replace_tx(chain, old, tx),
            };
            let link = self.world.link_mut(chain).expect("attached");
            match &result {
                Ok(_) => link.stats.delivered += 1,
                Err(_) => link.stats.nacked += 1,
            }
            return result;
        }
        let txid = match &payload {
            Payload::Submit { tx } | Payload::Replace { tx, .. } => tx.id(),
        };
        link.enqueue(now + delay, attribution, payload);
        Ok(txid)
    }
}

impl ChainApi for NetworkedApi<'_> {
    fn now(&self) -> Timestamp {
        self.world.now()
    }

    fn delta_ms(&self) -> u64 {
        self.world.delta_ms()
    }

    fn min_block_interval_ms(&self) -> u64 {
        self.world.min_block_interval_ms()
    }

    fn is_reachable(&self, chain: ChainId) -> bool {
        self.world.is_reachable(chain)
    }

    fn chain(&self, chain: ChainId) -> Result<&Blockchain, WorldError> {
        self.world.chain(chain)
    }

    fn anchor(&self, chain: ChainId) -> Result<ChainAnchor, WorldError> {
        self.world.anchor(chain)
    }

    fn tx_evidence_since(
        &self,
        chain: ChainId,
        anchor: &ChainAnchor,
        txid: TxId,
    ) -> Result<TxInclusionEvidence, WorldError> {
        self.world.tx_evidence_since(chain, anchor, txid)
    }

    fn contract_state(&self, chain: ChainId, contract: ContractId) -> Option<(String, u64)> {
        self.world.contract_state(chain, contract)
    }

    fn is_billed(&self, txid: &TxId) -> bool {
        self.world.fees.is_billed(txid)
    }

    fn tx_in_flight(&self, chain: ChainId, txid: &TxId) -> bool {
        self.world.tx_in_flight(chain, txid)
    }

    fn congestion(&mut self, chain: ChainId) -> Result<ChainCongestion, WorldError> {
        if let Some(link) = self.world.link_mut(chain) {
            link.stats.probes += 1;
        }
        self.world.congestion(chain)
    }

    fn marginal_fee(&mut self, chain: ChainId) -> Result<Option<Amount>, WorldError> {
        self.world.marginal_fee(chain)
    }

    fn submit(&mut self, chain: ChainId, tx: Transaction) -> Result<TxId, WorldError> {
        self.send(chain, Payload::Submit { tx })
    }

    fn replace_tx(
        &mut self,
        chain: ChainId,
        old: TxId,
        tx: Transaction,
    ) -> Result<TxId, WorldError> {
        self.send(chain, Payload::Replace { old, tx })
    }

    fn record(&mut self, at: Timestamp, kind: EventKind) {
        self.world.timeline.record(at, kind);
    }

    fn schedule_outage(&mut self, chain: ChainId, window: OutageWindow) -> Result<(), WorldError> {
        self.world.schedule_outage(chain, window)
    }

    fn inject_fork(
        &mut self,
        chain: ChainId,
        fork_depth: u64,
        length: u64,
    ) -> Result<Vec<BlockHash>, WorldError> {
        self.world.inject_fork(chain, fork_depth, length)
    }
}
