//! A minimal, self-contained stand-in for `criterion`.
//!
//! This workspace must build without network access, so the real criterion
//! cannot be fetched. This crate implements the subset of its API that the
//! workspace's benches use — `criterion_group!`/`criterion_main!`,
//! `Criterion::{default, sample_size, measurement_time, warm_up_time,
//! bench_function, benchmark_group}`, `Bencher::{iter, iter_batched}`,
//! `BatchSize` and `Throughput` — with genuine wall-clock measurement: each
//! benchmark is warmed up, sampled, and reported as `min / median / max`
//! per-iteration time (plus throughput when configured).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped between setup calls. The stand-in times
/// each routine invocation individually (setup excluded from measurement),
/// so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(800),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Set the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the measurement budget per benchmark (builder style).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark (builder style).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.clone(), &id.into(), None, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { config: self.clone(), name: name.into(), throughput: None, _parent: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    config: Criterion,
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Override the warm-up budget for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&self.config, &full, self.throughput, &mut f);
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records per-iteration timings.
pub struct Bencher {
    config: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Benchmark a routine, timing each sample of many iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let budget = self.config.measurement_time.as_nanos();
        let total_iters = (budget / per_iter.max(1)).clamp(1, 10_000_000) as u64;
        let iters_per_sample = (total_iters / self.config.sample_size as u64).max(1);

        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }

    /// Benchmark a routine with a per-iteration setup whose cost is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up (single pass; setup may be expensive).
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter = t0.elapsed();

        // Aim for the measurement budget, but cap iterations so expensive
        // setups stay tolerable.
        let budget = self.config.measurement_time.as_nanos();
        let total = (budget / per_iter.as_nanos().max(1)).clamp(1, 10_000) as usize;
        let samples = total.min(self.config.sample_size).max(1);
        let iters_per_sample = (total / samples).max(1);

        for _ in 0..samples {
            let mut acc = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                acc += t0.elapsed();
            }
            self.samples.push(acc / iters_per_sample as u32);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    config: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher { config: config.clone(), samples: Vec::new() };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<50} (no samples recorded)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    let mut line = format!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| -> f64 {
            let nanos = median.as_nanos().max(1) as f64;
            units as f64 * 1e9 / nanos
        };
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.2} Melem/s", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
