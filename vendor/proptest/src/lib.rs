//! A minimal, self-contained stand-in for `proptest`.
//!
//! This workspace must build without network access, so the real proptest
//! cannot be fetched. This crate covers the subset its tests use: the
//! [`proptest!`] macro over identifier-bound strategies, integer-range and
//! [`any`] strategies, [`collection::vec`], [`option::of`], and the
//! `prop_assert*` macros. Each property runs a fixed number of cases drawn
//! from a deterministic per-test generator (seeded from the test name), so
//! failures are reproducible. There is no shrinking — the failing inputs are
//! printed as-is via the assertion message.

#![forbid(unsafe_code)]

/// Number of cases each property test runs.
pub const NUM_CASES: usize = 96;

/// Deterministic random source for strategy sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator seeded from an arbitrary string (typically the test name).
    pub fn deterministic(seed: &str) -> Self {
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        for b in seed.bytes() {
            state = state.wrapping_mul(0x100_0000_01b3).wrapping_add(u64::from(b));
        }
        Gen { state }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draw one value.
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + gen.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a full-range [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draw a uniform value of the whole domain.
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};

    /// Strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector strategy drawing lengths from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, gen: &mut Gen) -> Self::Value {
            let n = self.len.sample(gen);
            (0..n).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Gen, Strategy};

    /// Strategy for `Option<T>` (~1/4 `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An option strategy wrapping `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, gen: &mut Gen) -> Self::Value {
            if gen.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(gen))
            }
        }
    }
}

/// The `proptest::prelude`, mirroring what call sites glob-import.
pub mod prelude {
    pub use crate::{any, Arbitrary, Gen, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// [`NUM_CASES`] times with fresh samples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __gen = $crate::Gen::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut __gen);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in crate::collection::vec(any::<u8>(), 0..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(v.len() < 9);
        }

        #[test]
        fn options_sometimes_none(o in crate::option::of(0usize..5)) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }
}
