//! A minimal, self-contained stand-in for the `serde` crate.
//!
//! This workspace must build without network access, so the real `serde`
//! cannot be fetched. This crate provides the small slice of serde that the
//! workspace actually uses — `#[derive(Serialize, Deserialize)]` plus a
//! value model that `serde_json` (also vendored) renders to and from JSON
//! text. The design is deliberately simpler than real serde: serialization
//! goes through an owned [`Value`] tree instead of a streaming data model.
//!
//! Compatibility notes:
//! * Only the API surface used by this workspace is provided.
//! * Encodings are self-consistent (encode → decode round-trips) but are not
//!   guaranteed to be byte-identical with real `serde_json`.
//! * Maps serialize as arrays of `[key, value]` pairs so that non-string
//!   keys need no special treatment.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, loosely-typed serialized value (the JSON data model, with exact
/// 64-bit integers preserved).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer, preserved exactly.
    U64(u64),
    /// A negative integer, preserved exactly.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-ordered object.
    Object(Map),
}

impl Value {
    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The map, mutably, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// An insertion-ordered string-keyed map of values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a key/value pair, replacing and returning any previous value
    /// under the same key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for entry in &mut self.entries {
            if entry.0 == key {
                return Some(std::mem::replace(&mut entry.1, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Fetch a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be rendered to a [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module of real serde, reduced to what the workspace uses.
pub mod de {
    /// Marker for deserializable types that own all their data. In this
    /// stand-in every [`crate::Deserialize`] type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match value {
                    Value::U64(n) => i128::from(*n),
                    Value::I64(n) => i128::from(*n),
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected number for f64"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        items.try_into().map_err(|_| Error::custom("array length mismatch"))
    }
}

fn pairs(value: &Value) -> Result<impl Iterator<Item = &Value>, Error> {
    Ok(value.as_array().ok_or_else(|| Error::custom("expected array of pairs"))?.iter())
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let mut map = BTreeMap::new();
        for pair in pairs(value)? {
            let (k, v) = <(K, V)>::from_value(pair)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let mut map = HashMap::new();
        for pair in pairs(value)? {
            let (k, v) = <(K, V)>::from_value(pair)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                if items.len() != $len {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
