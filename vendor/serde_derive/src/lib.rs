//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which cannot be fetched
//! in this offline workspace, so the derive input is parsed directly from the
//! `proc_macro` token stream. Supported shapes are exactly the ones this
//! workspace uses: non-generic structs (named, tuple, unit) and non-generic
//! enums (unit, tuple and struct variants), plus the `#[serde(skip)]` field
//! attribute (the field is omitted on serialize and filled from `Default` on
//! deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` by rendering the type to a `serde::Value` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` by rebuilding the type from a `serde::Value`
/// tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    /// Field name for named fields, `None` in tuple position.
    name: Option<String>,
    skip: bool,
}

enum Fields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let msg = msg.replace('"', "\\\"");
            return format!("compile_error!(\"serde stand-in derive: {msg}\");")
                .parse()
                .expect("error tokens parse");
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume leading outer attributes, returning whether `#[serde(skip)]`
    /// was among them.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    skip |= attr_is_serde_skip(g.stream());
                    self.pos += 2;
                }
                _ => return skip,
            }
        }
    }

    /// Consume `pub`, `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume tokens of a type (or discriminant expression) until a `,` at
    /// zero angle-bracket depth, leaving the comma unconsumed.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_visibility();
    let keyword = cur.expect_ident()?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("unsupported item kind `{other}`")),
    };
    let name = cur.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported"));
        }
    }
    if is_enum {
        let body = match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        Ok(Item::Enum { name, variants: parse_variants(body.stream())? })
    } else {
        match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())?) })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct { name, fields: Fields::Tuple(parse_tuple_fields(g.stream())) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok(Item::Struct { name, fields: Fields::Unit })
            }
            other => Err(format!("expected struct body, found {other:?}")),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let skip = cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident()?;
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        cur.skip_until_comma();
        cur.next(); // consume the comma, if any
        fields.push(Field { name: Some(name), skip });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let skip = cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        cur.skip_until_comma();
        cur.next(); // consume the comma, if any
        fields.push(Field { name: None, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident()?;
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                cur.next();
                Fields::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                cur.next();
                Fields::Tuple(fields)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        cur.skip_until_comma();
        cur.next();
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = ser_fields_expr(fields, &SelfAccess);
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                        ));
                    }
                    Fields::Tuple(fs) => {
                        let binds: Vec<String> = (0..fs.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if fs.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(\"{vname}\", {payload});\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let names: Vec<&str> =
                            fs.iter().map(|f| f.name.as_deref().unwrap_or("")).collect();
                        let mut inner = String::from("let mut __inner = ::serde::Map::new();\n");
                        for f in fs {
                            if f.skip {
                                continue;
                            }
                            let fname = f.name.as_deref().unwrap_or("");
                            inner.push_str(&format!(
                                "__inner.insert(\"{fname}\", ::serde::Serialize::to_value({fname}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                                 {inner}\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(\"{vname}\", ::serde::Value::Object(__inner));\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n",
                            names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

struct SelfAccess;

fn ser_fields_expr(fields: &Fields, _access: &SelfAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(fs) if fs.len() == 1 => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(fs) => {
            let items: Vec<String> =
                (0..fs.len()).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fs) => {
            let mut body = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fs {
                if f.skip {
                    continue;
                }
                let fname = f.name.as_deref().unwrap_or("");
                body.push_str(&format!(
                    "__m.insert(\"{fname}\", ::serde::Serialize::to_value(&self.{fname}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(__m)");
            format!("{{ {body} }}")
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = de_struct_body(name, fields);
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut object_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "if __s == \"{vname}\" {{ return ::std::result::Result::Ok({name}::{vname}); }}\n"
                        ));
                    }
                    Fields::Tuple(fs) if fs.len() == 1 => {
                        object_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = __m.get(\"{vname}\") {{\n\
                                 return ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?));\n\
                             }}\n"
                        ));
                    }
                    Fields::Tuple(fs) => {
                        let n = fs.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        object_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = __m.get(\"{vname}\") {{\n\
                                 let __a = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for variant {vname}\"))?;\n\
                                 if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"variant {vname} arity mismatch\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vname}({}));\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut inits = String::new();
                        for f in fs {
                            let fname = f.name.as_deref().unwrap_or("");
                            if f.skip {
                                inits.push_str(&format!(
                                    "{fname}: ::std::default::Default::default(),\n"
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{fname}: ::serde::Deserialize::from_value(__im.get(\"{fname}\").unwrap_or(&::serde::Value::Null))?,\n"
                                ));
                            }
                        }
                        object_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(__inner) = __m.get(\"{vname}\") {{\n\
                                 let __im = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant {vname}\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vname} {{ {inits} }});\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::std::option::Option::Some(__s) = __v.as_str() {{ {unit_arms} }}\n\
                         if let ::std::option::Option::Some(__m) = __v.as_object() {{ {object_arms} }}\n\
                         ::std::result::Result::Err(::serde::Error::custom(\"unknown variant for {name}\"))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("let _ = __v; ::std::result::Result::Ok({name})"),
        Fields::Tuple(fs) if fs.len() == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(fs) => {
            let n = fs.len();
            let items: Vec<String> =
                (0..n).map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?")).collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"{name} arity mismatch\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Fields::Named(fs) => {
            let mut inits = String::new();
            for f in fs {
                let fname = f.name.as_deref().unwrap_or("");
                if f.skip {
                    inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{fname}: ::serde::Deserialize::from_value(__m.get(\"{fname}\").unwrap_or(&::serde::Value::Null))?,\n"
                    ));
                }
            }
            format!(
                "let __m = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
    }
}
