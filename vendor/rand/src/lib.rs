//! A minimal, self-contained stand-in for `rand`.
//!
//! Provides the subset this workspace uses: the [`Rng`] trait with
//! `gen_range` over `Range<u64>`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] (a splitmix64 generator — deterministic and fast; not
//! cryptographically secure, which matches how the workspace uses it: test
//! vectors and simulation sampling).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core uniform bit source.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers over a bit source.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open). Panics on empty ranges.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        // Debiased multiply-shift rejection sampling.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let raw = self.next_u64();
            if raw <= zone {
                return range.start + raw % span;
            }
        }
    }

    /// A uniform `u64`.
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator of this stand-in: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(1..1_000_000), b.gen_range(1..1_000_000));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..17);
            assert!((10..17).contains(&x));
        }
    }
}
