//! A minimal, self-contained stand-in for `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Value`] tree to JSON text and
//! parses it back. Only the functions this workspace calls are provided:
//! [`to_value`], [`to_string`], [`to_string_pretty`], [`to_vec`],
//! [`from_str`], [`from_slice`].
//!
//! Integers are preserved exactly (64-bit), strings are escaped per RFC 8259,
//! and map-like Rust collections arrive here already encoded as arrays of
//! `[key, value]` pairs by the serde stand-in, so non-string keys need no
//! special treatment. Non-finite floats serialize as `null` (as in real
//! `serde_json`).

#![forbid(unsafe_code)]

pub use serde::{Error, Map, Value};

/// Result alias matching real `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-round-trip formatting; integral floats
                // print without a fraction and parse back as integers, which
                // the numeric Deserialize impls accept.
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: decode when a high surrogate is
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid unicode escape"))?);
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence beginning at `b`.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated unicode escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::I64(-(n as i64)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> Result<usize> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err(Error::custom("invalid utf-8 leading byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        One(u32),
        Pair(u32, String),
        Named { a: bool, b: Vec<u8> },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Everything {
        n: u64,
        big: u64,
        neg: i64,
        x: f64,
        flag: bool,
        text: String,
        opt_some: Option<u32>,
        opt_none: Option<u32>,
        list: Vec<Inner>,
        map: BTreeMap<u32, String>,
        arr: [u8; 4],
        kinds: Vec<Kind>,
        #[serde(skip)]
        skipped: u32,
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let value = Everything {
            n: 7,
            big: u64::MAX,
            neg: -42,
            x: 1.5,
            flag: true,
            text: "hello \"world\"\nline2 ünïcode".to_string(),
            opt_some: Some(3),
            opt_none: None,
            list: vec![Inner(1), Inner(2)],
            map: BTreeMap::from([(1, "one".to_string()), (2, "two".to_string())]),
            arr: [9, 8, 7, 6],
            kinds: vec![
                Kind::Unit,
                Kind::One(5),
                Kind::Pair(6, "six".to_string()),
                Kind::Named { a: false, b: vec![0, 255] },
            ],
            skipped: 123,
        };
        let compact = to_string(&value).unwrap();
        let round: Everything = from_str(&compact).unwrap();
        assert_eq!(round, Everything { skipped: 0, ..value });

        let pretty = to_string_pretty(&round).unwrap();
        let again: Everything = from_str(&pretty).unwrap();
        assert_eq!(again, round);
    }

    #[test]
    fn exact_u64_preserved() {
        let n: u64 = (1 << 61) + 12345;
        let s = to_string(&n).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<u64>("[1,").is_err());
        assert!(from_str::<u64>("{\"a\":}").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
