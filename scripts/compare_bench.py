#!/usr/bin/env python3
"""Perf/quality ratchet over committed BENCH_*.json reports.

Usage: compare_bench.py BASELINE.json FRESH.json [--tolerance PCT]

Compares the ``ratchet`` object of a freshly generated bench report against
the committed baseline and exits nonzero when any metric regresses by more
than the tolerance (default 15%). Direction is inferred from the key name:
keys ending in ``_ns``/``_us``/``_ms`` are timings (lower is better);
keys ending in ``_count`` are exact invariants (slash counts, determinism
agreements — any drift in either direction fails, tolerance ignored);
everything else — hit rates, throughputs — is higher-is-better.

Only deterministic metrics belong in ``ratchet`` (the buffer-pool bench
puts buffer-pool hit rates of fixed access sequences there, which are
machine-independent); wall-clock timings live in informational fields that
this script never compares, so shared CI runners cannot flake the gate.

Improvements are reported but never fail the run; a new key in the fresh
report (no baseline entry) is reported and skipped; a key that *vanished*
from the fresh report fails — silently dropping a metric is how ratchets
rot.

The vendored serde serializes Rust maps as arrays of ``[key, value]``
pairs; plain JSON objects are accepted too.
"""

import argparse
import json
import sys


def load_ratchet(path):
    with open(path) as f:
        report = json.load(f)
    ratchet = report.get("ratchet")
    if ratchet is None:
        sys.exit(f"error: {path} has no 'ratchet' object")
    if isinstance(ratchet, list):  # vendored-serde map shape
        ratchet = {str(k): v for k, v in ratchet}
    return {k: float(v) for k, v in ratchet.items()}


def lower_is_better(key):
    return key.rsplit("/", 1)[0].endswith(("_ns", "_us", "_ms")) or key.endswith(
        ("_ns", "_us", "_ms")
    )


def exact_match(key):
    return key.rsplit("/", 1)[0].endswith("_count") or key.endswith("_count")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=15.0, help="allowed regression, percent")
    args = ap.parse_args()

    base = load_ratchet(args.baseline)
    fresh = load_ratchet(args.fresh)
    tol = args.tolerance / 100.0

    failures = []
    for key in sorted(base):
        if key not in fresh:
            failures.append(f"{key}: present in baseline but missing from fresh report")
            continue
        b, f = base[key], fresh[key]
        if exact_match(key):
            regressed = f != b
            marker = "FAIL" if regressed else "  ok"
            print(f"{marker}  {key}: baseline {b:.6g} -> fresh {f:.6g} (exact)")
            if regressed:
                failures.append(f"{key}: {b:.6g} -> {f:.6g} (exact-match key drifted)")
            continue
        if lower_is_better(key):
            regressed = f > b * (1.0 + tol)
            delta = (f - b) / b * 100.0 if b else 0.0
        else:
            regressed = f < b * (1.0 - tol)
            delta = (f - b) / b * 100.0 if b else 0.0
        marker = "FAIL" if regressed else ("  ok" if abs(delta) <= args.tolerance else "  up")
        print(f"{marker}  {key}: baseline {b:.6g} -> fresh {f:.6g} ({delta:+.1f}%)")
        if regressed:
            failures.append(f"{key}: {b:.6g} -> {f:.6g} ({delta:+.1f}%)")
    for key in sorted(set(fresh) - set(base)):
        print(f" new  {key}: {fresh[key]:.6g} (no baseline, skipped)")

    if failures:
        print(f"\n{len(failures)} ratchet regression(s) beyond {args.tolerance:.0f}%:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nratchet ok: {len(base)} metrics within {args.tolerance:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
