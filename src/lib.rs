//! # ac3wn — Atomic Commitment Across Blockchains (reproduction)
//!
//! Facade crate re-exporting the whole workspace behind one dependency:
//!
//! * [`crypto`] — SHA-256, Schnorr signatures, Merkle trees, commitment
//!   schemes and the graph multisignature `ms(D)`;
//! * [`chain`] — the permissionless blockchain simulator (UTXO assets,
//!   proof-of-work blocks, longest-chain fork choice, light clients);
//! * [`contracts`] — the paper's Algorithms 1–4 plus HTLCs, executed by the
//!   `SwapVm`;
//! * [`sim`] — the discrete-event multi-chain world with crash/partition
//!   fault injection;
//! * [`core`] — the AC3WN and AC3TW protocols, the Nolan/Herlihy baselines
//!   (single- and multi-leader), the AC2T graph model, evidence validation,
//!   the Section 6 analytical models and the executed Section 6.3 fork
//!   attack;
//! * [`client`] — the end-user layer: wallets, swap negotiation
//!   (assembling `ms(D)`) and persistent, crash-recoverable swap sessions.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction of every table and figure.
//!
//! ```
//! use ac3wn::prelude::*;
//!
//! let mut scenario = two_party_scenario(50, 80, &ScenarioConfig::default());
//! let report = Ac3wn::new(ProtocolConfig::default()).execute(&mut scenario).unwrap();
//! assert!(report.is_atomic());
//! ```

#![forbid(unsafe_code)]

pub use ac3_chain as chain;
pub use ac3_client as client;
pub use ac3_contracts as contracts;
pub use ac3_core as core;
pub use ac3_crypto as crypto;
pub use ac3_sim as sim;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use ac3_chain::{Address, Amount, BaseFeeSchedule, ChainId, ChainParams, ContractId, TxId};
    pub use ac3_client::{Negotiation, SessionPhase, SignedSwap, SwapSession, Wallet};
    pub use ac3_core::scenario::{
        concurrent_swaps_multi_witness, concurrent_swaps_scenario, MultiSwapScenario, SwapSpec,
    };
    pub use ac3_core::scenario::{
        custom_scenario, figure7a_scenario, figure7b_scenario, ring_scenario, two_party_scenario,
        Scenario, ScenarioConfig,
    };
    pub use ac3_core::{
        run_campaign, Ac3tw, Ac3wn, AtomicityVerdict, BatchReport, CampaignConfig, CampaignPlan,
        CampaignReport, CampaignSpace, EdgeDisposition, FeePolicy, GraphShape, Herlihy,
        HerlihyMulti, Nolan, ProtocolConfig, ProtocolKind, ProtocolLane, Scheduler, SwapEdge,
        SwapGraph, SwapMachine, SwapReport, ValidationStrategy, WitnessAssignment,
    };
    pub use ac3_crypto::{Hash256, Hashlock, KeyPair};
    pub use ac3_sim::{
        ChainCongestion, CrashWindow, FaultPlan, OutageWindow, ParticipantSet, SwapId, World,
    };
}
