//! Integration tests for complex transaction graphs (Figure 7 / Section 5.3)
//! and the cross-chain evidence validation strategies (Section 4.3).

use ac3wn::core::evidence::{validate_with_all, ValidationStrategy};
use ac3wn::core::scenario::custom_scenario;
use ac3wn::prelude::*;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

#[test]
fn figure7a_cyclic_graph_commits_under_ac3wn() {
    let mut s = figure7a_scenario(&ScenarioConfig::default());
    assert_eq!(s.graph.shape(), GraphShape::Cyclic);
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    // One contract per edge plus the witness contract.
    assert_eq!(report.deployments as usize, s.graph.contract_count() + 1);
}

#[test]
fn figure7b_disconnected_graph_commits_under_ac3wn_but_not_herlihy() {
    let mut s = figure7b_scenario(&ScenarioConfig::default());
    assert_eq!(s.graph.shape(), GraphShape::Disconnected);
    assert!(Herlihy::supports_graph(&s.graph).is_err());
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
}

#[test]
fn larger_supply_chain_graph_commits_atomically() {
    let mut s = custom_scenario(
        &["manufacturer", "shipper", "retailer", "insurer", "bank"],
        &[(0, 1, 40), (1, 2, 40), (2, 0, 90), (3, 1, 15), (1, 3, 5), (4, 0, 25), (2, 4, 25)],
        &ScenarioConfig::default(),
    );
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    assert_eq!(report.edges.len(), 7);
    assert!(report.edges.iter().all(|e| e.disposition == EdgeDisposition::Redeemed));
}

#[test]
fn all_validation_strategies_agree_on_real_swap_evidence() {
    // Run a swap, then validate the deployment transaction of the first
    // asset contract under all three Section 4.3 strategies.
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let chain = s.asset_chains[0];
    let anchor = s.world.anchor(chain).unwrap();
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert!(report.is_atomic());

    // Find the deployment transaction of the contract on chain A.
    let contract = report.edges[0].contract.expect("deployed");
    let deploy_txid = TxId(contract.0);
    let reports = validate_with_all(&s.world, chain, deploy_txid, &anchor, 3).unwrap();
    assert_eq!(reports.len(), 3);
    for r in &reports {
        assert!(r.valid, "{} rejected a real deployment", r.strategy);
    }
    // The paper's proposal is the cheapest in persistent storage.
    let contract_based =
        reports.iter().find(|r| r.strategy == ValidationStrategy::ContractBased).unwrap();
    let full = reports.iter().find(|r| r.strategy == ValidationStrategy::FullReplication).unwrap();
    assert!(contract_based.cost.blocks_stored < full.cost.blocks_stored);
}

#[test]
fn graph_multisignature_binds_all_participants_of_a_complex_graph() {
    let s = figure7a_scenario(&ScenarioConfig::default());
    let keypairs: Vec<KeyPair> = s
        .graph
        .participants()
        .iter()
        .map(|a| s.participants.by_address(a).unwrap().keypair())
        .collect();
    let ms = s.graph.multisign(&keypairs).unwrap();
    assert!(ms.is_complete_for(&s.graph.participant_keys()));
    // Dropping any one signature breaks completeness.
    let partial = {
        let mut m = s.graph.start_multisig();
        for kp in &keypairs[..keypairs.len() - 1] {
            m.sign_with(kp).unwrap();
        }
        m
    };
    assert!(!partial.is_complete_for(&s.graph.participant_keys()));
}
