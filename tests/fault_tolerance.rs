//! Fault-injection integration tests: crash failures, network partitions and
//! witness-chain forks (experiments E4/E6 at test scale).

use ac3wn::prelude::*;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

/// The paper's motivating scenario: the baselines lose the crashed
/// participant's asset; AC3WN never produces conflicting outcomes.
#[test]
fn crash_past_timelock_baselines_violate_ac3wn_does_not() {
    let crash = CrashWindow { from: 9_000, until: 10_000_000 };

    let mut nolan_s = two_party_scenario(50, 80, &ScenarioConfig::default());
    nolan_s.participants.get_mut("bob").unwrap().schedule_crash(crash);
    let nolan = Nolan::new(protocol_cfg()).execute(&mut nolan_s).unwrap();
    assert!(!nolan.is_atomic(), "Nolan should violate atomicity: {}", nolan.verdict());

    let mut wn_s = two_party_scenario(50, 80, &ScenarioConfig::default());
    wn_s.participants.get_mut("bob").unwrap().schedule_crash(crash);
    let wn = Ac3wn::new(protocol_cfg()).execute(&mut wn_s).unwrap();
    assert!(wn.is_atomic(), "AC3WN must stay atomic: {}", wn.verdict());
}

/// A crashed participant who recovers within the run completes the swap —
/// the commitment property in action.
#[test]
fn recovered_participant_completes_the_ac3wn_swap() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    s.participants
        .get_mut("bob")
        .unwrap()
        .schedule_crash(CrashWindow { from: 13_000, until: 40_000 });
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.decision, Some(true));
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
}

/// A witness-chain partition delays the decision but never produces
/// conflicting outcomes.
#[test]
fn witness_chain_partition_delays_but_preserves_atomicity() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let witness = s.witness_chain;
    // The witness chain is unreachable for the first 6 simulated seconds:
    // the registration attempt fails and the driver reports no decision.
    s.world.schedule_outage(witness, OutageWindow { from: 0, until: 6_000 }).unwrap();
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    // With the witness unreachable at registration time nothing is ever
    // locked — an atomic no-op rather than a stuck swap.
    assert!(report.is_atomic());
    assert_ne!(report.verdict(), AtomicityVerdict::AllRedeemed);
}

/// Forking the witness chain below the required depth does not disturb an
/// already-settled swap (Lemma 5.3 at simulation scale).
#[test]
fn shallow_witness_fork_cannot_undo_a_settled_swap() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let bob = s.participants.get("bob").unwrap().address();
    let chain_a = s.asset_chains[0];
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    let balance_before = s.world.chain(chain_a).unwrap().balance_of(&bob);

    // Inject a fork on the witness chain shallower than d = 3.
    s.world.inject_fork(s.witness_chain, 2, 4).unwrap();
    // The asset chains are untouched; Bob keeps what he redeemed.
    assert_eq!(s.world.chain(chain_a).unwrap().balance_of(&bob), balance_before);
}

/// Even when *both* participants crash after the decision, no conflicting
/// outcome is possible — assets simply wait for their owners.
#[test]
fn everyone_crashing_after_decision_is_still_atomic() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    for name in ["alice", "bob"] {
        s.participants
            .get_mut(name)
            .unwrap()
            .schedule_crash(CrashWindow { from: 13_000, until: 10_000_000 });
    }
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert!(report.is_atomic(), "verdict: {}", report.verdict());
    // No asset can have moved to the wrong side.
    assert!(!matches!(report.verdict(), AtomicityVerdict::Violated { .. }));
}

/// A mid-batch asset-chain partition that opens *after* the witness
/// decision and closes long before the wait cap: the settlement
/// submissions treat the unreachable chain as a soft error, keep re-bidding
/// from inside the scheduler loop, and wake up as soon as the outage
/// window closes — the swap still commits, finishing only after the
/// partition lifts.
#[test]
fn settlement_outage_swap_wakes_after_the_window_closes_and_commits() {
    let cfg = ProtocolConfig { wait_cap_deltas: 64, ..protocol_cfg() };
    let outage = OutageWindow { from: 8_500, until: 28_000 };

    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    s.world.schedule_outage(s.asset_chains[0], outage).unwrap();
    let machine = Ac3wn::new(cfg).machine(s.graph.clone(), s.witness_chain);
    let batch = Scheduler::default().run(
        &mut s.world,
        &mut s.participants,
        vec![(SwapId(0), Box::new(machine))],
    );

    let report = batch.report_for(SwapId(0)).expect("swap survives the outage");
    assert_eq!(report.decision, Some(true));
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    // The settlement on the partitioned chain could not land inside the
    // window: commit time proves the machine waited it out and resumed.
    assert!(
        batch.finished_at >= outage.until,
        "finished at {} — inside the outage window ending {}",
        batch.finished_at,
        outage.until
    );
}

/// Regression: the witness chain unreachable at decision time used to park
/// the swap immediately — one failed authorize submission and the machine
/// gave up, even if the partition healed moments later. The machine now
/// retries the authorize call once per block interval until the wait cap,
/// so an outage that ends inside the cap converts the park into a *late
/// commit*: the decision lands after the partition heals and both edges
/// redeem.
#[test]
fn witness_unreachable_at_decision_time_retries_into_a_late_commit() {
    let cfg = ProtocolConfig { wait_cap_deltas: 64, ..protocol_cfg() };
    let outage = OutageWindow { from: 6_000, until: 60_000 };
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    s.world.schedule_outage(s.witness_chain, outage).unwrap();
    let machine = Ac3wn::new(cfg).machine(s.graph.clone(), s.witness_chain);
    let batch = Scheduler::default().run(
        &mut s.world,
        &mut s.participants,
        vec![(SwapId(0), Box::new(machine))],
    );

    let report = batch.report_for(SwapId(0)).expect("retrying is graceful, not an error");
    assert_eq!(report.decision, Some(true), "the healed partition admits a late commit");
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    assert!(
        batch.finished_at >= outage.until,
        "finished at {} — the decision cannot predate the partition healing at {}",
        batch.finished_at,
        outage.until
    );
}

/// A witness partition that *outlives* the wait cap is the one outage the
/// protocol cannot ride out within the run: every authorize retry fails
/// until the cap expires, so the machine parks the swap with no decision.
/// Both deployments stay locked — assets are delayed, never conflicting,
/// and the atomicity audit still passes.
#[test]
fn witness_unreachable_past_the_wait_cap_parks_the_swap_without_conflict() {
    let cfg = ProtocolConfig { wait_cap_deltas: 64, ..protocol_cfg() };
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    // wait_cap = 64 Δ = 64 s; an outage lasting past start + cap from every
    // retry deadline keeps the witness dark for the machine's whole run.
    s.world.schedule_outage(s.witness_chain, OutageWindow { from: 6_000, until: 600_000 }).unwrap();
    let machine = Ac3wn::new(cfg).machine(s.graph.clone(), s.witness_chain);
    let batch = Scheduler::default().run(
        &mut s.world,
        &mut s.participants,
        vec![(SwapId(0), Box::new(machine))],
    );

    let report = batch.report_for(SwapId(0)).expect("parking is graceful, not an error");
    assert_eq!(report.decision, None, "no decision without the witness");
    assert!(
        matches!(report.verdict(), AtomicityVerdict::Incomplete { .. }),
        "verdict: {}",
        report.verdict()
    );
    assert!(report.is_atomic(), "locked-but-undecided must never count as a violation");
}

/// Mid-batch fault injection through the scheduler itself: a seeded
/// campaign whose plan is two participant crashes plus two chain
/// partitions, all initiated by the fault-injector machine *while* the
/// mixed-protocol batch runs. Every honest swap settles (commit or clean
/// abort), nothing errors, and the atomicity audit passes. The exact
/// outcome split is pinned — the campaign is deterministic by seed.
#[test]
fn scheduler_injected_crashes_and_partitions_settle_every_swap() {
    let mut cfg = CampaignConfig::new(3);
    cfg.swaps = 6;
    cfg.space = CampaignSpace { crashes: 2, partitions: 2, ..CampaignSpace::quiet() };
    let report = run_campaign(&cfg).expect("campaign executes");

    let crashes = report
        .plan
        .events
        .iter()
        .filter(|e| matches!(e.fault, ac3wn::sim::Fault::Crash { .. }))
        .count();
    let partitions = report
        .plan
        .events
        .iter()
        .filter(|e| matches!(e.fault, ac3wn::sim::Fault::Partition { .. }))
        .count();
    assert_eq!((crashes, partitions), (2, 2), "the plan drew every requested fault");

    assert_eq!(report.failed, 0, "honest machine errored: {:?}", report.failures);
    assert_eq!(report.adversary_failures, 0);
    assert!(report.atomic, "atomicity audit failed");
    // Seed 3 drives two swaps into the crash/partition windows hard enough
    // to abort and leaves the rest to commit — both paths exercised.
    assert_eq!(report.committed, 2);
    assert_eq!(report.aborted, 2);
}

/// AC3TW is atomic under participant crashes too — but a single unavailable
/// witness stalls it completely, which AC3WN avoids by construction.
#[test]
fn ac3tw_is_atomic_but_stalls_when_trent_is_down() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let mut driver = Ac3tw::new(protocol_cfg());
    driver.trent_available = false;
    let report = driver.execute(&mut s).unwrap();
    assert_eq!(report.decision, None);
    assert!(matches!(report.verdict(), AtomicityVerdict::Incomplete { .. }));

    // Same world shape under AC3WN commits fine.
    let mut s2 = two_party_scenario(50, 80, &ScenarioConfig::default());
    let report2 = Ac3wn::new(protocol_cfg()).execute(&mut s2).unwrap();
    assert_eq!(report2.verdict(), AtomicityVerdict::AllRedeemed);
}
