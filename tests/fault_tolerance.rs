//! Fault-injection integration tests: crash failures, network partitions and
//! witness-chain forks (experiments E4/E6 at test scale).

use ac3wn::prelude::*;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

/// The paper's motivating scenario: the baselines lose the crashed
/// participant's asset; AC3WN never produces conflicting outcomes.
#[test]
fn crash_past_timelock_baselines_violate_ac3wn_does_not() {
    let crash = CrashWindow { from: 9_000, until: 10_000_000 };

    let mut nolan_s = two_party_scenario(50, 80, &ScenarioConfig::default());
    nolan_s.participants.get_mut("bob").unwrap().schedule_crash(crash);
    let nolan = Nolan::new(protocol_cfg()).execute(&mut nolan_s).unwrap();
    assert!(!nolan.is_atomic(), "Nolan should violate atomicity: {}", nolan.verdict());

    let mut wn_s = two_party_scenario(50, 80, &ScenarioConfig::default());
    wn_s.participants.get_mut("bob").unwrap().schedule_crash(crash);
    let wn = Ac3wn::new(protocol_cfg()).execute(&mut wn_s).unwrap();
    assert!(wn.is_atomic(), "AC3WN must stay atomic: {}", wn.verdict());
}

/// A crashed participant who recovers within the run completes the swap —
/// the commitment property in action.
#[test]
fn recovered_participant_completes_the_ac3wn_swap() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    s.participants
        .get_mut("bob")
        .unwrap()
        .schedule_crash(CrashWindow { from: 13_000, until: 40_000 });
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.decision, Some(true));
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
}

/// A witness-chain partition delays the decision but never produces
/// conflicting outcomes.
#[test]
fn witness_chain_partition_delays_but_preserves_atomicity() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let witness = s.witness_chain;
    // The witness chain is unreachable for the first 6 simulated seconds:
    // the registration attempt fails and the driver reports no decision.
    s.world.schedule_outage(witness, OutageWindow { from: 0, until: 6_000 }).unwrap();
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    // With the witness unreachable at registration time nothing is ever
    // locked — an atomic no-op rather than a stuck swap.
    assert!(report.is_atomic());
    assert_ne!(report.verdict(), AtomicityVerdict::AllRedeemed);
}

/// Forking the witness chain below the required depth does not disturb an
/// already-settled swap (Lemma 5.3 at simulation scale).
#[test]
fn shallow_witness_fork_cannot_undo_a_settled_swap() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let bob = s.participants.get("bob").unwrap().address();
    let chain_a = s.asset_chains[0];
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);
    let balance_before = s.world.chain(chain_a).unwrap().balance_of(&bob);

    // Inject a fork on the witness chain shallower than d = 3.
    s.world.inject_fork(s.witness_chain, 2, 4).unwrap();
    // The asset chains are untouched; Bob keeps what he redeemed.
    assert_eq!(s.world.chain(chain_a).unwrap().balance_of(&bob), balance_before);
}

/// Even when *both* participants crash after the decision, no conflicting
/// outcome is possible — assets simply wait for their owners.
#[test]
fn everyone_crashing_after_decision_is_still_atomic() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    for name in ["alice", "bob"] {
        s.participants
            .get_mut(name)
            .unwrap()
            .schedule_crash(CrashWindow { from: 13_000, until: 10_000_000 });
    }
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert!(report.is_atomic(), "verdict: {}", report.verdict());
    // No asset can have moved to the wrong side.
    assert!(!matches!(report.verdict(), AtomicityVerdict::Violated { .. }));
}

/// AC3TW is atomic under participant crashes too — but a single unavailable
/// witness stalls it completely, which AC3WN avoids by construction.
#[test]
fn ac3tw_is_atomic_but_stalls_when_trent_is_down() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let mut driver = Ac3tw::new(protocol_cfg());
    driver.trent_available = false;
    let report = driver.execute(&mut s).unwrap();
    assert_eq!(report.decision, None);
    assert!(matches!(report.verdict(), AtomicityVerdict::Incomplete { .. }));

    // Same world shape under AC3WN commits fine.
    let mut s2 = two_party_scenario(50, 80, &ScenarioConfig::default());
    let report2 = Ac3wn::new(protocol_cfg()).execute(&mut s2).unwrap();
    assert_eq!(report2.verdict(), AtomicityVerdict::AllRedeemed);
}
