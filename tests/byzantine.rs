//! Byzantine campaign property tests: under any seeded random campaign of
//! crashes, partitions, 51% forks, equivocating witnesses, bribed
//! attestations and fee-market griefing, no honest participant loses
//! principal within its timelock margin — every honest machine reaches
//! commit-or-refund-all (the atomicity audit passes and nobody times out
//! past its wait cap), and every slashable Byzantine act leaves exactly one
//! accepted on-chain evidence object.
//!
//! The vendored `proptest` has no shrinking, so failures shrink at the
//! *plan* level: a greedy pass zeroes and halves the campaign space's fault
//! classes, keeping each move only if the property still fails, and reports
//! the minimal failing `(seed, space, swaps)` triple as the panic message.

use ac3wn::prelude::*;
use proptest::Gen;

/// One sampled campaign: everything needed to reproduce a failure.
#[derive(Clone, Debug)]
struct Trial {
    seed: u64,
    swaps: usize,
    space: CampaignSpace,
}

impl Trial {
    fn config(&self) -> CampaignConfig {
        let mut cfg = CampaignConfig::new(self.seed);
        cfg.swaps = self.swaps;
        cfg.space = self.space.clone();
        cfg
    }
}

/// Sample a campaign from the generator: a mixed-protocol batch under the
/// default (adaptive-fee) posture, with every fault class drawn
/// independently.
fn sample_trial(gen: &mut Gen) -> Trial {
    // Field order matters: each field is one draw from the generator.
    let space = CampaignSpace {
        crashes: gen.below(3) as usize,
        partitions: gen.below(2) as usize,
        forks: gen.below(2) as usize,
        equivocations: gen.below(3) as usize,
        bribes: gen.below(2) as usize,
        floods: gen.below(2) as usize,
        spikes: gen.below(2) as usize,
        griefing_budget: [0, 500, 1_000, 2_000][gen.below(4) as usize],
        ..CampaignSpace::default()
    };
    Trial { seed: gen.next_u64(), swaps: 4 + gen.below(5) as usize, space }
}

/// The property. `Err` carries a diagnosis; the campaign report's failure
/// list names the machine and error for honest losses.
fn holds(trial: &Trial) -> Result<(), String> {
    let report = run_campaign(&trial.config()).map_err(|e| format!("campaign errored: {e}"))?;
    if report.failed > 0 {
        return Err(format!(
            "{} honest machine(s) lost liveness past the timelock margin: {:?}",
            report.failed, report.failures
        ));
    }
    if report.adversary_failures > 0 {
        return Err(format!("adversary machine errored: {:?}", report.failures));
    }
    if !report.atomic {
        return Err("commit-or-refund-all violated: atomicity audit failed".to_string());
    }
    if report.slashes_accepted != report.equivocations {
        return Err(format!(
            "equivocations {} but accepted slashes {}: a Byzantine witness escaped \
             without a slashable evidence object",
            report.equivocations, report.slashes_accepted
        ));
    }
    if report.bonds_slashed != report.equivocations {
        return Err(format!(
            "equivocations {} but slashed bonds {}",
            report.equivocations, report.bonds_slashed
        ));
    }
    if report.duplicate_slash_reports_rejected != report.equivocations {
        return Err(format!(
            "equivocations {} but duplicate reports rejected {}: a bond was slashed twice",
            report.equivocations, report.duplicate_slash_reports_rejected
        ));
    }
    if report.bribes_detected != report.bribes {
        return Err(format!(
            "bribed attestations {} but detected {}",
            report.bribes, report.bribes_detected
        ));
    }
    if report.equivocations > 0 && report.stake_slashed == 0 {
        return Err("a slashed equivocation must forfeit stake".to_string());
    }
    Ok(())
}

/// Greedy plan-level shrinking: try to zero each fault class, then halve
/// the griefing budget and the batch size, keeping each move only if the
/// trial still fails `check`. Runs to a fixpoint (bounded by `budget`
/// re-executions) and returns the minimal failing trial.
fn shrink<F: Fn(&Trial) -> Result<(), String>>(mut trial: Trial, check: F, budget: usize) -> Trial {
    let mut runs = 0usize;
    let still_fails = |t: &Trial, runs: &mut usize| {
        *runs += 1;
        check(t).is_err()
    };
    loop {
        let mut improved = false;
        type Move = fn(&mut CampaignSpace);
        let moves: &[Move] = &[
            |s| s.crashes = 0,
            |s| s.partitions = 0,
            |s| s.forks = 0,
            |s| s.equivocations = 0,
            |s| s.bribes = 0,
            |s| s.floods = 0,
            |s| s.spikes = 0,
            |s| s.griefing_budget /= 2,
        ];
        for mv in moves {
            let mut candidate = trial.clone();
            mv(&mut candidate.space);
            if candidate.space == trial.space {
                continue;
            }
            if runs >= budget {
                return trial;
            }
            if still_fails(&candidate, &mut runs) {
                trial = candidate;
                improved = true;
            }
        }
        if trial.swaps > 4 {
            let mut candidate = trial.clone();
            candidate.swaps = 4.max(trial.swaps / 2);
            if runs < budget && still_fails(&candidate, &mut runs) {
                trial = candidate;
                improved = true;
            }
        }
        if !improved || runs >= budget {
            return trial;
        }
    }
}

/// The tentpole property: 20 independently sampled campaigns, all holding
/// principal-safety and exactly-once slashing. On failure, the panic
/// message is the *shrunk* minimal reproduction.
#[test]
fn no_honest_principal_lost_under_any_seeded_campaign() {
    let mut gen = Gen::deterministic("byzantine-campaigns-v1");
    for case in 0..20 {
        let trial = sample_trial(&mut gen);
        if let Err(first) = holds(&trial) {
            let minimal = shrink(trial, holds, 48);
            let diagnosis = holds(&minimal).err().unwrap_or(first);
            panic!(
                "case {case}: property violated.\n  minimal repro: seed={} swaps={} space={:?}\n  \
                 diagnosis: {diagnosis}",
                minimal.seed, minimal.swaps, minimal.space
            );
        }
    }
}

/// A campaign with every fault class active at once (the kitchen sink)
/// still commits its unharassed lanes and slashes exactly once per
/// equivocation.
#[test]
fn kitchen_sink_campaign_holds_every_invariant() {
    let trial = Trial {
        seed: 0xB12A,
        swaps: 8,
        space: CampaignSpace {
            crashes: 2,
            partitions: 1,
            forks: 1,
            equivocations: 2,
            bribes: 1,
            floods: 1,
            spikes: 1,
            griefing_budget: 2_000,
            ..CampaignSpace::default()
        },
    };
    holds(&trial).expect("kitchen-sink campaign holds");
    let report = run_campaign(&trial.config()).expect("campaign executes");
    assert_eq!(report.equivocations, 2, "two equivocations planned");
    assert_eq!(report.slashes_accepted, 2, "both slashed exactly once");
    assert!(report.adversary_fees > 0, "griefing spend is attributed to the adversary");
}

/// The shrinker itself: against a synthetic predicate that fails exactly
/// when floods and spikes are both present, the greedy pass strips every
/// irrelevant fault class and shrinks the batch to its floor.
#[test]
fn plan_shrinking_strips_irrelevant_fault_classes() {
    let failing = Trial {
        seed: 7,
        swaps: 8,
        space: CampaignSpace {
            crashes: 2,
            partitions: 1,
            forks: 1,
            equivocations: 1,
            bribes: 1,
            floods: 1,
            spikes: 1,
            griefing_budget: 2_000,
            ..CampaignSpace::default()
        },
    };
    let synthetic = |t: &Trial| -> Result<(), String> {
        if t.space.floods > 0 && t.space.spikes > 0 {
            Err("synthetic: floods × spikes interact".to_string())
        } else {
            Ok(())
        }
    };
    let minimal = shrink(failing, synthetic, 64);
    assert_eq!(minimal.space.crashes, 0);
    assert_eq!(minimal.space.partitions, 0);
    assert_eq!(minimal.space.forks, 0);
    assert_eq!(minimal.space.equivocations, 0);
    assert_eq!(minimal.space.bribes, 0);
    assert_eq!(minimal.space.floods, 1, "the culprit class survives shrinking");
    assert_eq!(minimal.space.spikes, 1, "the culprit class survives shrinking");
    assert_eq!(minimal.swaps, 4, "batch size shrinks to its floor");
    assert!(minimal.space.griefing_budget < 2_000, "budget halves while still failing");
}
