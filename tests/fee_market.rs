//! Fee-market integration tests: bounded mempools, replace-by-fee bidding
//! and witness assignment under contention, exercised through the whole
//! stack (chain → sim → core scheduler).
//!
//! The load-bearing property: under *any* contention level, an
//! escalating-policy batch (a) never pays more than the policy cap for any
//! single accepted transaction and (b) preserves commit-or-refund-all
//! atomicity for every swap.

use ac3wn::prelude::*;
use proptest::Gen;

fn protocol_cfg(policy: FeePolicy) -> ProtocolConfig {
    ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        // Contended witness chains queue submissions many blocks deep.
        wait_cap_deltas: 256,
        fee_policy: policy,
        ..Default::default()
    }
}

fn machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)))
}

/// Property: random batch size × witness-chain count × witness tps ×
/// base-fee schedule × escalation policy — accepted fees never exceed the
/// policy cap and every swap ends atomically (commit-or-refund-all), with
/// the dynamic base fee moving the admission floor under the batch's feet.
///
/// Uses the deterministic proptest generator directly so the number of
/// simulated batches stays bounded.
#[test]
fn property_escalating_fees_respect_the_cap_and_atomicity() {
    let mut gen = Gen::deterministic("fee_market::cap_and_atomicity");
    for case in 0..10 {
        let swaps = 2 + gen.below(7) as usize; // 2..=8
        let witnesses = 1 + gen.below(3) as usize; // 1..=3
        let witness_tps = 1 + gen.below(4); // 1..=4 — the contention level

        // Caps stay far above any base fee the bounded schedules below can
        // reach, so the contention delays swaps instead of failing them.
        let cap = 48 + gen.below(80); // 48..=127
        let policy = match gen.below(3) {
            0 => FeePolicy::Exponential { cap },
            1 => FeePolicy::Linear { step: 1 + gen.below(8), cap },
            _ => FeePolicy::Adaptive { margin: gen.below(4), cap },
        };
        // Random miner-side schedule: the base fee may be pinned at zero
        // (disabled), pinned at a positive floor, or fully dynamic.
        let schedule = BaseFeeSchedule {
            floor: gen.below(3),
            target_utilisation_pct: 25 + (25 * gen.below(3)) as u32,
            max_change_pct: gen.below(16) as u32,
        };

        let asset_params: Vec<ChainParams> =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params: Vec<ChainParams> = (0..witnesses)
            .map(|i| {
                ChainParams::fast(&format!("witness-{i}"), witness_tps).with_base_fee(schedule)
            })
            .collect();
        let mut s = concurrent_swaps_multi_witness(swaps, asset_params, witness_params, 10_000);
        let driver = Ac3wn::new(protocol_cfg(policy));
        let ms = machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);

        let ctx = format!(
            "case {case}: swaps={swaps} witnesses={witnesses} tps={witness_tps} {policy:?} {schedule:?}"
        );
        assert_eq!(batch.failed(), 0, "{ctx}: contention must delay, not fail");
        assert!(batch.all_atomic(), "{ctx}: atomicity (commit-or-refund-all) violated");
        assert_eq!(batch.committed(), swaps, "{ctx}: healthy swaps all commit");

        // No accepted (canonical) transaction on any chain ever paid more
        // than the policy cap — the cap is a hard per-transaction ceiling.
        for chain in s.world.chain_ids() {
            let c = s.world.chain(chain).unwrap();
            for block in c.store().canonical_blocks() {
                for tx in &block.transactions {
                    if !tx.is_coinbase() {
                        assert!(
                            tx.fee <= cap,
                            "{ctx}: accepted tx paid {} above the cap {cap}",
                            tx.fee
                        );
                    }
                }
            }
        }
        // Per-swap bills are bounded by cap × transactions, and attribution
        // still adds up to the world ledger.
        for (id, report) in batch.reports() {
            let txs = report.deployments + report.calls;
            assert!(
                report.fees_paid <= cap * txs,
                "{ctx}: swap {id} paid {} over {txs} txs with cap {cap}",
                report.fees_paid
            );
            assert!(report.fees_paid >= report.fees_scheduled, "{ctx}: paid below schedule");
            assert_eq!(
                s.world.fees.fees_for_swap(*id),
                report.fees_paid,
                "{ctx}: ledger attribution disagrees with the swap's own tally"
            );
        }
        s.world.assert_state_integrity();
    }
}

/// The fee market is observable end to end: a starved shared witness chain
/// forces re-bids under an escalating policy, the extra fees show up in
/// both the per-swap reports and the world ledger, and a fixed-fee batch
/// on the identical workload pays exactly the Section 6.2 schedule.
#[test]
fn escalation_is_visible_in_reports_and_ledger() {
    let build = || {
        let asset_params: Vec<ChainParams> =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params = vec![ChainParams::fast("witness", 1)];
        concurrent_swaps_multi_witness(8, asset_params, witness_params, 10_000)
    };

    let mut fixed = build();
    let fixed_driver = Ac3wn::new(protocol_cfg(FeePolicy::Fixed));
    let fixed_ms = machines(&fixed, &fixed_driver);
    let fixed_batch = Scheduler::default().run(&mut fixed.world, &mut fixed.participants, fixed_ms);
    let fixed_stats = fixed_batch.fee_stats();
    assert_eq!(fixed_batch.committed(), 8);
    assert_eq!(fixed_stats.rebids, 0);
    assert_eq!(fixed_stats.fees_paid, fixed_stats.fees_scheduled);

    let mut market = build();
    let market_driver = Ac3wn::new(protocol_cfg(FeePolicy::Exponential { cap: 64 }));
    let market_ms = machines(&market, &market_driver);
    let market_batch =
        Scheduler::default().run(&mut market.world, &mut market.participants, market_ms);
    let market_stats = market_batch.fee_stats();
    assert_eq!(market_batch.committed(), 8);
    assert!(market_stats.rebids > 0, "starved witness chain must force re-bids");
    assert!(market_stats.fees_paid > market_stats.fees_scheduled);
    assert!(market_stats.mean_inflation > 1.0);
    // Identical scheduled work on both runs: the market only changes the
    // price of the same operations.
    assert_eq!(market_stats.fees_scheduled, fixed_stats.fees_scheduled);
}

/// Griefing economics at the ledger level: to displace honest
/// transactions from a bounded mempool the flooder must strictly outbid
/// every resident it evicts, and evicted victims are refunded by the fee
/// ledger — so a full displacement costs the attacker strictly more than
/// the fee mass it displaced, and the victims end up paying nothing.
#[test]
fn mempool_flooding_costs_more_than_the_fees_it_displaces() {
    const VICTIMS: SwapId = SwapId(1);
    const FLOODER: SwapId = SwapId(2);

    let mut world = World::new();
    let mut params = ChainParams::fast("griefed", 1_000);
    params.mempool_capacity = 6;
    // Nothing mines during the exchange: the pool is the battleground.
    params.block_interval_ms = 1_000_000;
    let chain = world.add_chain(params, &[]);

    // Six honest bidders at fees 2..=7 fill the pool.
    let mut honest = ac3wn::chain::TxBuilder::new(KeyPair::from_seed(b"honest"), 0);
    world.set_fee_attribution(Some(VICTIMS));
    let mut victim_fees: Amount = 0;
    let mut victim_txs = Vec::new();
    for i in 0..6u8 {
        let phantom = ac3wn::chain::OutPoint::new(TxId(Hash256::digest(&[i, 0xAA])), 0);
        let fee = 2 + Amount::from(i);
        victim_fees += fee;
        victim_txs.push(world.submit(chain, honest.transfer(vec![phantom], vec![], fee)).unwrap());
    }
    assert_eq!(world.fees.fees_for_swap(VICTIMS), victim_fees);

    // Matching the cheapest resident's fee is not enough: admission into a
    // full pool demands strictly more than the eviction candidate.
    let mut flooder = ac3wn::chain::TxBuilder::new(KeyPair::from_seed(b"flooder"), 1 << 40);
    world.set_fee_attribution(Some(FLOODER));
    let tie = ac3wn::chain::OutPoint::new(TxId(Hash256::digest(b"tie")), 0);
    assert!(world.submit(chain, flooder.transfer(vec![tie], vec![], 2)).is_err());
    assert_eq!(world.fees.fees_for_swap(FLOODER), 0, "a rejected bid is never billed");

    // Displace the whole pool: each flood transaction outbids the highest
    // victim fee, so all six evictions hit victims (never the flooder's
    // own earlier bids).
    let flood_fee = 8;
    for i in 0..6u8 {
        let phantom = ac3wn::chain::OutPoint::new(TxId(Hash256::digest(&[i, 0xBB])), 0);
        world.submit(chain, flooder.transfer(vec![phantom], vec![], flood_fee)).unwrap();
    }
    world.set_fee_attribution(None);

    let pool = world.chain(chain).unwrap();
    assert_eq!(pool.mempool_len(), 6);
    for tx in &victim_txs {
        assert!(!pool.mempool_contains(tx), "every victim was displaced");
    }
    // The attack's economics, straight from the attributed ledger: the
    // victims were refunded in full, and the flooder's net spend strictly
    // exceeds the displaced fee mass (each eviction outbids its victim).
    assert_eq!(world.fees.fees_for_swap(VICTIMS), 0, "evicted victims are refunded");
    let flood_cost = world.fees.fees_for_swap(FLOODER);
    assert_eq!(flood_cost, 6 * flood_fee);
    assert!(
        flood_cost > victim_fees,
        "displacing {victim_fees} in honest fees cost the flooder only {flood_cost}"
    );
}

/// The escalation policy buys liveness under a griefing campaign: the
/// *same* seeded flood + base-fee-spike attack, run once under `Fixed`
/// bidding and once under `Adaptive`, leaves the fixed AC3WN lane priced
/// out (zero commits — every swap falls back to refund-all when its
/// witness traffic can't get mined) while the adaptive lane commits every
/// swap, paying a measurable fee premium for it. Safety holds in both
/// worlds; only the escalating bidder keeps liveness.
///
/// Seed 23 is pinned because its griefing windows overlap the witness
/// traffic of both AC3WN swaps in the mixed batch (probed over 0..30).
#[test]
fn adaptive_bidding_out_survives_fixed_under_a_griefing_spike() {
    let run = |policy: FeePolicy| {
        let mut cfg = CampaignConfig::new(23);
        cfg.swaps = 6;
        cfg.space = CampaignSpace { floods: 1, spikes: 1, ..CampaignSpace::quiet() };
        cfg.space.griefing_budget = 4_000;
        cfg.protocol.fee_policy = policy;
        run_campaign(&cfg).expect("campaign executes")
    };
    let fixed = run(FeePolicy::Fixed);
    let adaptive = run(FeePolicy::Adaptive { margin: 1, cap: 64 });

    // Safety is policy-independent: both runs settle every honest swap
    // atomically with no protocol errors.
    for (name, r) in [("fixed", &fixed), ("adaptive", &adaptive)] {
        assert_eq!(r.failed, 0, "{name}: honest machine errored: {:?}", r.failures);
        assert_eq!(r.adversary_failures, 0, "{name}: adversary errored: {:?}", r.failures);
        assert!(r.atomic, "{name}: atomicity audit failed");
    }

    // Liveness is not: the fixed AC3WN lane is priced out of its witness
    // chain and refunds everything, the adaptive lane commits everything.
    fn lane(r: &CampaignReport) -> &ProtocolLane {
        r.per_protocol.get("Ac3Wn").expect("AC3WN lane present")
    }
    assert_eq!(lane(&fixed).committed, 0, "fixed bidders must be priced out under the spike");
    let survived = lane(&adaptive);
    assert_eq!(survived.committed, survived.swaps, "every adaptive AC3WN swap commits");

    // And the premium the adaptive batch paid for that liveness is visible
    // in the ledger: paid above schedule, while the priced-out fixed batch
    // paid nothing beyond it.
    assert!(
        adaptive.honest_fees_paid > adaptive.honest_fees_scheduled,
        "escalation premium must be visible ({} paid vs {} scheduled)",
        adaptive.honest_fees_paid,
        adaptive.honest_fees_scheduled
    );
    assert!(
        fixed.honest_fees_paid <= fixed.honest_fees_scheduled,
        "a fixed-fee batch never pays above schedule"
    );
    assert!(
        adaptive.honest_fees_paid > fixed.honest_fees_paid,
        "liveness under the spike is bought, not free"
    );
}

/// Least-loaded witness assignment beats static round-robin when one
/// witness network is congested: the scheduler observes mempool depths at
/// launch and routes every swap to the healthy chain.
#[test]
fn least_loaded_assignment_avoids_a_congested_witness_network() {
    let asset_params: Vec<ChainParams> =
        (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
    let witness_params: Vec<ChainParams> =
        (0..2).map(|i| ChainParams::fast(&format!("witness-{i}"), 1_000)).collect();
    let mut s = concurrent_swaps_multi_witness(6, asset_params, witness_params, 10_000);

    // Congest witness 0 with junk that never mines but keeps the queue deep.
    let mut spammer = ac3wn::chain::TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
    for i in 0..40u8 {
        let phantom = ac3wn::chain::OutPoint::new(TxId(Hash256::digest(&[i, 0x55])), 0);
        s.world.submit(s.witness_chains[0], spammer.transfer(vec![phantom], vec![], 0)).unwrap();
    }

    let driver = Ac3wn::new(protocol_cfg(FeePolicy::Fixed));
    let seeds =
        s.seeds_with(move |swap, witness| Box::new(driver.machine(swap.graph.clone(), witness)));
    let witness_chains = s.witness_chains.clone();
    let batch = Scheduler::default().run_assigned(
        &mut s.world,
        &mut s.participants,
        &witness_chains,
        WitnessAssignment::LeastLoaded,
        seeds,
    );
    assert_eq!(batch.committed(), 6);
    assert!(batch.all_atomic());
    let counts = batch.witness_assignments();
    assert_eq!(counts.get(&witness_chains[0]), None, "congested witness gets no swaps");
    assert_eq!(counts.get(&witness_chains[1]), Some(&6));
}
