//! Fee-market integration tests: bounded mempools, replace-by-fee bidding
//! and witness assignment under contention, exercised through the whole
//! stack (chain → sim → core scheduler).
//!
//! The load-bearing property: under *any* contention level, an
//! escalating-policy batch (a) never pays more than the policy cap for any
//! single accepted transaction and (b) preserves commit-or-refund-all
//! atomicity for every swap.

use ac3wn::prelude::*;
use proptest::Gen;

fn protocol_cfg(policy: FeePolicy) -> ProtocolConfig {
    ProtocolConfig {
        witness_depth: 3,
        deployment_depth: 3,
        // Contended witness chains queue submissions many blocks deep.
        wait_cap_deltas: 256,
        fee_policy: policy,
        ..Default::default()
    }
}

fn machines(s: &MultiSwapScenario, driver: &Ac3wn) -> Vec<(SwapId, Box<dyn SwapMachine>)> {
    s.machines_with(|swap| Box::new(driver.machine(swap.graph.clone(), swap.witness)))
}

/// Property: random batch size × witness-chain count × witness tps ×
/// base-fee schedule × escalation policy — accepted fees never exceed the
/// policy cap and every swap ends atomically (commit-or-refund-all), with
/// the dynamic base fee moving the admission floor under the batch's feet.
///
/// Uses the deterministic proptest generator directly so the number of
/// simulated batches stays bounded.
#[test]
fn property_escalating_fees_respect_the_cap_and_atomicity() {
    let mut gen = Gen::deterministic("fee_market::cap_and_atomicity");
    for case in 0..10 {
        let swaps = 2 + gen.below(7) as usize; // 2..=8
        let witnesses = 1 + gen.below(3) as usize; // 1..=3
        let witness_tps = 1 + gen.below(4); // 1..=4 — the contention level

        // Caps stay far above any base fee the bounded schedules below can
        // reach, so the contention delays swaps instead of failing them.
        let cap = 48 + gen.below(80); // 48..=127
        let policy = match gen.below(3) {
            0 => FeePolicy::Exponential { cap },
            1 => FeePolicy::Linear { step: 1 + gen.below(8), cap },
            _ => FeePolicy::Adaptive { margin: gen.below(4), cap },
        };
        // Random miner-side schedule: the base fee may be pinned at zero
        // (disabled), pinned at a positive floor, or fully dynamic.
        let schedule = BaseFeeSchedule {
            floor: gen.below(3),
            target_utilisation_pct: 25 + (25 * gen.below(3)) as u32,
            max_change_pct: gen.below(16) as u32,
        };

        let asset_params: Vec<ChainParams> =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params: Vec<ChainParams> = (0..witnesses)
            .map(|i| {
                ChainParams::fast(&format!("witness-{i}"), witness_tps).with_base_fee(schedule)
            })
            .collect();
        let mut s = concurrent_swaps_multi_witness(swaps, asset_params, witness_params, 10_000);
        let driver = Ac3wn::new(protocol_cfg(policy));
        let ms = machines(&s, &driver);
        let batch = Scheduler::default().run(&mut s.world, &mut s.participants, ms);

        let ctx = format!(
            "case {case}: swaps={swaps} witnesses={witnesses} tps={witness_tps} {policy:?} {schedule:?}"
        );
        assert_eq!(batch.failed(), 0, "{ctx}: contention must delay, not fail");
        assert!(batch.all_atomic(), "{ctx}: atomicity (commit-or-refund-all) violated");
        assert_eq!(batch.committed(), swaps, "{ctx}: healthy swaps all commit");

        // No accepted (canonical) transaction on any chain ever paid more
        // than the policy cap — the cap is a hard per-transaction ceiling.
        for chain in s.world.chain_ids() {
            let c = s.world.chain(chain).unwrap();
            for block in c.store().canonical_blocks() {
                for tx in &block.transactions {
                    if !tx.is_coinbase() {
                        assert!(
                            tx.fee <= cap,
                            "{ctx}: accepted tx paid {} above the cap {cap}",
                            tx.fee
                        );
                    }
                }
            }
        }
        // Per-swap bills are bounded by cap × transactions, and attribution
        // still adds up to the world ledger.
        for (id, report) in batch.reports() {
            let txs = report.deployments + report.calls;
            assert!(
                report.fees_paid <= cap * txs,
                "{ctx}: swap {id} paid {} over {txs} txs with cap {cap}",
                report.fees_paid
            );
            assert!(report.fees_paid >= report.fees_scheduled, "{ctx}: paid below schedule");
            assert_eq!(
                s.world.fees.fees_for_swap(*id),
                report.fees_paid,
                "{ctx}: ledger attribution disagrees with the swap's own tally"
            );
        }
        s.world.assert_state_integrity();
    }
}

/// The fee market is observable end to end: a starved shared witness chain
/// forces re-bids under an escalating policy, the extra fees show up in
/// both the per-swap reports and the world ledger, and a fixed-fee batch
/// on the identical workload pays exactly the Section 6.2 schedule.
#[test]
fn escalation_is_visible_in_reports_and_ledger() {
    let build = || {
        let asset_params: Vec<ChainParams> =
            (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
        let witness_params = vec![ChainParams::fast("witness", 1)];
        concurrent_swaps_multi_witness(8, asset_params, witness_params, 10_000)
    };

    let mut fixed = build();
    let fixed_driver = Ac3wn::new(protocol_cfg(FeePolicy::Fixed));
    let fixed_ms = machines(&fixed, &fixed_driver);
    let fixed_batch = Scheduler::default().run(&mut fixed.world, &mut fixed.participants, fixed_ms);
    let fixed_stats = fixed_batch.fee_stats();
    assert_eq!(fixed_batch.committed(), 8);
    assert_eq!(fixed_stats.rebids, 0);
    assert_eq!(fixed_stats.fees_paid, fixed_stats.fees_scheduled);

    let mut market = build();
    let market_driver = Ac3wn::new(protocol_cfg(FeePolicy::Exponential { cap: 64 }));
    let market_ms = machines(&market, &market_driver);
    let market_batch =
        Scheduler::default().run(&mut market.world, &mut market.participants, market_ms);
    let market_stats = market_batch.fee_stats();
    assert_eq!(market_batch.committed(), 8);
    assert!(market_stats.rebids > 0, "starved witness chain must force re-bids");
    assert!(market_stats.fees_paid > market_stats.fees_scheduled);
    assert!(market_stats.mean_inflation > 1.0);
    // Identical scheduled work on both runs: the market only changes the
    // price of the same operations.
    assert_eq!(market_stats.fees_scheduled, fixed_stats.fees_scheduled);
}

/// Least-loaded witness assignment beats static round-robin when one
/// witness network is congested: the scheduler observes mempool depths at
/// launch and routes every swap to the healthy chain.
#[test]
fn least_loaded_assignment_avoids_a_congested_witness_network() {
    let asset_params: Vec<ChainParams> =
        (0..2).map(|i| ChainParams::fast(&format!("asset-{i}"), 1_000)).collect();
    let witness_params: Vec<ChainParams> =
        (0..2).map(|i| ChainParams::fast(&format!("witness-{i}"), 1_000)).collect();
    let mut s = concurrent_swaps_multi_witness(6, asset_params, witness_params, 10_000);

    // Congest witness 0 with junk that never mines but keeps the queue deep.
    let mut spammer = ac3wn::chain::TxBuilder::new(KeyPair::from_seed(b"spammer"), 1 << 40);
    for i in 0..40u8 {
        let phantom = ac3wn::chain::OutPoint::new(TxId(Hash256::digest(&[i, 0x55])), 0);
        s.world.submit(s.witness_chains[0], spammer.transfer(vec![phantom], vec![], 0)).unwrap();
    }

    let driver = Ac3wn::new(protocol_cfg(FeePolicy::Fixed));
    let seeds =
        s.seeds_with(move |swap, witness| Box::new(driver.machine(swap.graph.clone(), witness)));
    let witness_chains = s.witness_chains.clone();
    let batch = Scheduler::default().run_assigned(
        &mut s.world,
        &mut s.participants,
        &witness_chains,
        WitnessAssignment::LeastLoaded,
        seeds,
    );
    assert_eq!(batch.committed(), 6);
    assert!(batch.all_atomic());
    let counts = batch.witness_assignments();
    assert_eq!(counts.get(&witness_chains[0]), None, "congested witness gets no swaps");
    assert_eq!(counts.get(&witness_chains[1]), Some(&6));
}
