//! Adversarial integration tests: participants who deviate from the AC3WN
//! protocol must not be able to break all-or-nothing atomicity or steal
//! locked assets.
//!
//! These tests drive the protocol phases by hand (rather than through the
//! `Ac3wn` driver) so a malicious step can be inserted at any point: forged
//! or mismatched witness evidence, settlement attempts before any decision
//! exists, decision requests with incomplete deployment evidence, double
//! redemption, and the rented-hash-power fork attack of Section 6.3.

use ac3wn::contracts::{
    ContractCall, ContractSpec, ExpectedContract, PermissionlessCall, PermissionlessSpec,
    WitnessCall, WitnessSpec, WitnessStateEvidence,
};
use ac3wn::core::actions::{call_contract, deploy_contract};
use ac3wn::core::attack::{execute_fork_attack, ForkAttackConfig};
use ac3wn::crypto::WitnessState;
use ac3wn::prelude::*;

const WITNESS_DEPTH: u64 = 3;
const DEPLOY_DEPTH: u64 = 3;

/// A two-party swap world halted right after parallel deployment: both asset
/// contracts are published and stable, the witness contract is registered,
/// but no decision has been requested yet.
struct DeployedSwap {
    scenario: Scenario,
    alice: Address,
    bob: Address,
    witness_contract: ContractId,
    witness_registration_tx: TxId,
    witness_anchor: ac3wn::contracts::ChainAnchor,
    expected: Vec<ExpectedContract>,
    /// `(txid, contract)` per edge: edge 0 is Alice→Bob on chain A, edge 1
    /// is Bob→Alice on chain B.
    deployments: Vec<(TxId, ContractId)>,
}

fn deployed_two_party_swap() -> DeployedSwap {
    let mut scenario = two_party_scenario(50, 80, &ScenarioConfig::default());
    let delta = scenario.world.delta_ms();
    let wait_cap = delta * 12;
    let alice = scenario.participants.get("alice").unwrap().address();
    let bob = scenario.participants.get("bob").unwrap().address();
    let witness_chain = scenario.witness_chain;

    let keypairs: Vec<KeyPair> = scenario
        .graph
        .participants()
        .iter()
        .map(|a| scenario.participants.by_address(a).unwrap().keypair())
        .collect();
    let ms = scenario.graph.multisign(&keypairs).unwrap();

    let mut expected = Vec::new();
    for e in scenario.graph.edges() {
        expected.push(ExpectedContract {
            chain: e.chain,
            sender: e.from,
            recipient: e.to,
            amount: e.amount,
            anchor: scenario.world.anchor(e.chain).unwrap(),
            required_depth: DEPLOY_DEPTH,
        });
    }
    let witness_spec = ContractSpec::Witness(WitnessSpec {
        participants: scenario.graph.participants().to_vec(),
        graph_digest: ms.digest(),
        expected_contracts: expected.clone(),
        operator: None,
        stake: 0,
    });
    let (reg_txid, scw) = deploy_contract(
        &mut scenario.world,
        &mut scenario.participants,
        &alice,
        witness_chain,
        &witness_spec,
        0,
    )
    .unwrap()
    .expect("alice deploys SC_w");
    scenario.world.wait_for_depth(witness_chain, reg_txid, WITNESS_DEPTH, wait_cap).unwrap();
    let witness_anchor = scenario.world.anchor(witness_chain).unwrap();

    let edges: Vec<SwapEdge> = scenario.graph.edges().to_vec();
    let mut deployments = Vec::new();
    for e in &edges {
        let spec = ContractSpec::Permissionless(PermissionlessSpec {
            recipient: e.to,
            witness_chain,
            witness_contract: scw,
            min_depth: WITNESS_DEPTH,
            witness_anchor,
        });
        let deployed = deploy_contract(
            &mut scenario.world,
            &mut scenario.participants,
            &e.from,
            e.chain,
            &spec,
            e.amount,
        )
        .unwrap()
        .expect("participant deploys its asset contract");
        deployments.push(deployed);
    }
    for (e, (txid, _)) in edges.iter().zip(&deployments) {
        scenario.world.wait_for_depth(e.chain, *txid, DEPLOY_DEPTH, wait_cap).unwrap();
    }

    DeployedSwap {
        scenario,
        alice,
        bob,
        witness_contract: scw,
        witness_registration_tx: reg_txid,
        witness_anchor,
        expected,
        deployments,
    }
}

fn contract_tag(scenario: &Scenario, chain: ChainId, contract: ContractId) -> String {
    scenario.world.contract_state(chain, contract).map(|(tag, _)| tag).unwrap_or_default()
}

/// A genesis-anchored [`ChainAnchor`] for `chain` — always canonical, so any
/// canonical transaction of that chain can be wrapped in (structurally
/// valid but semantically forged) evidence against it.
fn genesis_anchor(world: &World, chain: ChainId) -> ac3wn::contracts::ChainAnchor {
    let genesis = world
        .chain(chain)
        .unwrap()
        .store()
        .canonical_block_at_height(0)
        .expect("every chain has a genesis block");
    ac3wn::contracts::ChainAnchor { chain, hash: genesis, height: 0 }
}

#[test]
fn settlement_before_any_decision_is_rejected() {
    // Bob tries to redeem Alice's contract using "evidence" that is merely
    // the witness contract's *registration* transaction — no authorize call
    // has happened, so there is nothing to prove.
    let mut swap = deployed_two_party_swap();
    let chain_a = swap.scenario.asset_chains[0];
    let (_, sc1) = swap.deployments[0];

    // The "evidence" wraps the witness contract's *registration* transaction
    // (anchored at the witness chain's genesis so it is structurally
    // well-formed) — but no authorize call has happened, so there is nothing
    // it can prove.
    let registration_evidence = {
        let anchor = genesis_anchor(&swap.scenario.world, swap.scenario.witness_chain);
        swap.scenario
            .world
            .tx_evidence_since(swap.scenario.witness_chain, &anchor, swap.witness_registration_tx)
            .expect("registration is canonical")
    };
    let bogus = WitnessStateEvidence {
        claimed: WitnessState::RedeemAuthorized,
        inclusion: registration_evidence,
    };
    let call = ContractCall::Permissionless(PermissionlessCall::Redeem { evidence: bogus });
    let txid = call_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.bob,
        chain_a,
        sc1,
        &call,
    )
    .unwrap()
    .expect("bob can submit the call");
    // The call is submitted but never included: miners reject it because the
    // evidence does not prove an authorize call.
    swap.scenario.world.advance(swap.scenario.world.delta_ms() * 2);
    assert_eq!(swap.scenario.world.chain(chain_a).unwrap().tx_depth(&txid), None);
    assert_eq!(contract_tag(&swap.scenario, chain_a, sc1), "P", "asset must stay locked");
}

#[test]
fn evidence_from_a_different_witness_contract_is_rejected() {
    // Mallory registers her own witness contract, immediately authorizes a
    // refund on it, and tries to use that RFauth evidence to pull Alice's
    // asset contract (which is conditioned on the real SC_w) back to Alice.
    let mut swap = deployed_two_party_swap();
    let witness_chain = swap.scenario.witness_chain;
    let chain_a = swap.scenario.asset_chains[0];
    let (_, sc1) = swap.deployments[0];
    let wait_cap = swap.scenario.world.delta_ms() * 12;

    let rogue_spec = ContractSpec::Witness(WitnessSpec {
        participants: vec![swap.alice, swap.bob],
        graph_digest: Hash256::digest(b"a different graph"),
        expected_contracts: swap.expected.clone(),
        operator: None,
        stake: 0,
    });
    let (rogue_reg, rogue_scw) = deploy_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.alice,
        witness_chain,
        &rogue_spec,
        0,
    )
    .unwrap()
    .expect("rogue witness contract deploys");
    swap.scenario.world.wait_for_depth(witness_chain, rogue_reg, WITNESS_DEPTH, wait_cap).unwrap();

    let rogue_refund = call_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.alice,
        witness_chain,
        rogue_scw,
        &ContractCall::Witness(WitnessCall::AuthorizeRefund),
    )
    .unwrap()
    .expect("authorize refund on the rogue contract");
    swap.scenario
        .world
        .wait_for_depth(witness_chain, rogue_refund, WITNESS_DEPTH, wait_cap)
        .unwrap();

    let rogue_evidence = WitnessStateEvidence {
        claimed: WitnessState::RefundAuthorized,
        inclusion: swap
            .scenario
            .world
            .tx_evidence_since(witness_chain, &swap.witness_anchor, rogue_refund)
            .expect("rogue refund is canonical"),
    };
    let refund_call =
        ContractCall::Permissionless(PermissionlessCall::Refund { evidence: rogue_evidence });
    let txid = call_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.alice,
        chain_a,
        sc1,
        &refund_call,
    )
    .unwrap()
    .expect("alice can submit the refund attempt");
    swap.scenario.world.advance(swap.scenario.world.delta_ms() * 2);
    assert_eq!(
        swap.scenario.world.chain(chain_a).unwrap().tx_depth(&txid),
        None,
        "a refund justified by a different witness contract must never be mined"
    );
    assert_eq!(contract_tag(&swap.scenario, chain_a, sc1), "P");
}

#[test]
fn claimed_state_must_match_the_authorize_call() {
    // A real AuthorizeRedeem is recorded, but the adversary claims it proves
    // RFauth and submits it to the refund path of her own contract — trying
    // to get her asset back after the swap committed.
    let mut swap = deployed_two_party_swap();
    let witness_chain = swap.scenario.witness_chain;
    let chain_a = swap.scenario.asset_chains[0];
    let (_, sc1) = swap.deployments[0];
    let wait_cap = swap.scenario.world.delta_ms() * 12;

    let mut evidence = Vec::new();
    for (exp, (txid, _)) in swap.expected.iter().zip(&swap.deployments) {
        evidence
            .push(swap.scenario.world.tx_evidence_since(exp.chain, &exp.anchor, *txid).unwrap());
    }
    let authorize = call_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.bob,
        witness_chain,
        swap.witness_contract,
        &ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: evidence }),
    )
    .unwrap()
    .expect("authorize redeem");
    swap.scenario.world.wait_for_depth(witness_chain, authorize, WITNESS_DEPTH, wait_cap).unwrap();

    let lying_evidence = WitnessStateEvidence {
        claimed: WitnessState::RefundAuthorized,
        inclusion: swap
            .scenario
            .world
            .tx_evidence_since(witness_chain, &swap.witness_anchor, authorize)
            .unwrap(),
    };
    let refund_call =
        ContractCall::Permissionless(PermissionlessCall::Refund { evidence: lying_evidence });
    let txid = call_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.alice,
        chain_a,
        sc1,
        &refund_call,
    )
    .unwrap()
    .expect("alice can submit the lying refund");
    swap.scenario.world.advance(swap.scenario.world.delta_ms() * 2);
    assert_eq!(swap.scenario.world.chain(chain_a).unwrap().tx_depth(&txid), None);
    assert_eq!(contract_tag(&swap.scenario, chain_a, sc1), "P");
}

#[test]
fn authorize_redeem_requires_evidence_for_every_contract() {
    // Only one of the two expected asset contracts is backed by evidence in
    // the state-change request: the witness network must refuse to commit.
    let mut swap = deployed_two_party_swap();
    let witness_chain = swap.scenario.witness_chain;
    let wait_cap = swap.scenario.world.delta_ms() * 6;

    let partial_evidence = vec![swap
        .scenario
        .world
        .tx_evidence_since(swap.expected[0].chain, &swap.expected[0].anchor, swap.deployments[0].0)
        .unwrap()];
    let authorize = call_contract(
        &mut swap.scenario.world,
        &mut swap.scenario.participants,
        &swap.bob,
        witness_chain,
        swap.witness_contract,
        &ContractCall::Witness(WitnessCall::AuthorizeRedeem { deployments: partial_evidence }),
    )
    .unwrap()
    .expect("submit the under-evidenced authorize");
    // The call never makes it into a block; SC_w stays undecided.
    assert!(swap.scenario.world.wait_for_depth(witness_chain, authorize, 0, wait_cap).is_err());
    assert_eq!(contract_tag(&swap.scenario, witness_chain, swap.witness_contract), "P");
}

#[test]
fn committed_contracts_cannot_be_redeemed_twice() {
    // Run the full honest protocol, then replay the recipient's redeem call:
    // the contract must stay in RD and no second payout may be minted.
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let bob = s.participants.get("bob").unwrap().address();
    let chain_a = s.asset_chains[0];
    let cfg = ProtocolConfig {
        witness_depth: WITNESS_DEPTH,
        deployment_depth: DEPLOY_DEPTH,
        ..Default::default()
    };
    let report = Ac3wn::new(cfg).execute(&mut s).unwrap();
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);

    let sc1 = report.edges[0].contract.unwrap();
    let balance_after_swap = s.world.chain(chain_a).unwrap().balance_of(&bob);

    // Replay: any further redeem call (even with valid-looking evidence) is
    // rejected because the contract is no longer in state P. We reuse the
    // simplest possible payload — the call is refused before evidence
    // inspection matters.
    let replay = ContractCall::Permissionless(PermissionlessCall::Redeem {
        evidence: WitnessStateEvidence {
            claimed: WitnessState::RedeemAuthorized,
            inclusion: {
                let anchor = genesis_anchor(&s.world, chain_a);
                s.world
                    .tx_evidence_since(chain_a, &anchor, TxId(sc1.0))
                    .expect("SC1's deployment is canonical")
            },
        },
    });
    let txid = call_contract(&mut s.world, &mut s.participants, &bob, chain_a, sc1, &replay)
        .unwrap()
        .expect("bob can submit the replay");
    s.world.advance(s.world.delta_ms() * 2);
    assert_eq!(s.world.chain(chain_a).unwrap().tx_depth(&txid), None, "replay is never mined");
    assert_eq!(
        s.world.chain(chain_a).unwrap().balance_of(&bob),
        balance_after_swap,
        "no second payout"
    );
    assert_eq!(
        s.world.contract_state(chain_a, sc1).unwrap().0,
        "RD",
        "contract stays redeemed exactly once"
    );
}

#[test]
fn fork_attack_needs_a_budget_larger_than_the_confirmation_depth() {
    // End-to-end sanity of the Section 6.3 experiment from the integration
    // level: an attacker who cannot afford to out-mine the confirmation
    // depth cannot break atomicity; one who can, does — which is why d must
    // be chosen so that the required budget costs more than the assets.
    let underfunded =
        execute_fork_attack(&ForkAttackConfig { attacker_budget_blocks: 2, ..Default::default() })
            .unwrap();
    assert!(!underfunded.attack_succeeded());
    assert!(underfunded.verdict.is_atomic());

    let probe_required = underfunded.required_branch_blocks;
    let funded = execute_fork_attack(&ForkAttackConfig {
        attacker_budget_blocks: probe_required,
        ..Default::default()
    })
    .unwrap();
    assert!(funded.attack_succeeded());
    assert!(!funded.verdict.is_atomic());
    assert!(
        funded.attacker_budget_blocks > underfunded.witness_depth,
        "a successful rewrite always costs more blocks than the confirmation depth"
    );
}
