//! Cross-crate integration tests: full protocol executions over simulated
//! chains, checking decisions, atomicity and actual asset movement.

use ac3wn::prelude::*;

fn protocol_cfg() -> ProtocolConfig {
    ProtocolConfig { witness_depth: 3, deployment_depth: 3, ..Default::default() }
}

/// Balances before/after a committed two-party swap must reflect the
/// exchanged amounts (minus fees paid by the deployers).
#[test]
fn ac3wn_two_party_swap_moves_assets() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let alice = s.participants.get("alice").unwrap().address();
    let bob = s.participants.get("bob").unwrap().address();
    let chain_a = s.asset_chains[0];
    let chain_b = s.asset_chains[1];
    let funding = 1_000;

    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.decision, Some(true));
    assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed);

    let world = &s.world;
    // Bob gained 50 on chain A; Alice gained 80 on chain B. Senders paid
    // deployment fees (4) on their asset chain; call fees are notional.
    assert_eq!(world.chain(chain_a).unwrap().balance_of(&bob), funding + 50);
    assert_eq!(world.chain(chain_b).unwrap().balance_of(&alice), funding + 80);
    assert_eq!(world.chain(chain_a).unwrap().balance_of(&alice), funding - 50 - 4);
    assert_eq!(world.chain(chain_b).unwrap().balance_of(&bob), funding - 80 - 4);
}

#[test]
fn all_five_protocols_commit_the_same_two_party_swap() {
    for kind in [
        ProtocolKind::Nolan,
        ProtocolKind::Herlihy,
        ProtocolKind::HerlihyMulti,
        ProtocolKind::Ac3Tw,
        ProtocolKind::Ac3Wn,
    ] {
        let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
        let report = match kind {
            ProtocolKind::Nolan => Nolan::new(protocol_cfg()).execute(&mut s).unwrap(),
            ProtocolKind::Herlihy => Herlihy::new(protocol_cfg()).execute(&mut s).unwrap(),
            ProtocolKind::HerlihyMulti => {
                HerlihyMulti::new(protocol_cfg()).execute(&mut s).unwrap()
            }
            ProtocolKind::Ac3Tw => Ac3tw::new(protocol_cfg()).execute(&mut s).unwrap(),
            ProtocolKind::Ac3Wn => Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap(),
        };
        assert_eq!(report.protocol, kind);
        assert_eq!(report.verdict(), AtomicityVerdict::AllRedeemed, "{kind} failed to commit");
        assert!(report.is_atomic());
    }
}

#[test]
fn ac3wn_constant_latency_vs_herlihy_linear_latency() {
    let mut ac3wn_latencies = Vec::new();
    let mut herlihy_latencies = Vec::new();
    for n in [2usize, 3, 5] {
        let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
        let r = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
        assert!(r.is_atomic());
        ac3wn_latencies.push(r.latency_in_deltas());

        let mut s = ring_scenario(n, 10, &ScenarioConfig::default());
        let r = Herlihy::new(protocol_cfg()).execute(&mut s).unwrap();
        assert!(r.is_atomic());
        herlihy_latencies.push(r.latency_in_deltas());
    }
    // AC3WN: flat. Herlihy: grows roughly linearly (2·Diam).
    assert!(ac3wn_latencies.iter().all(|l| (*l - ac3wn_latencies[0]).abs() <= 1.0));
    assert!(herlihy_latencies[2] > herlihy_latencies[0] + 3.0);
    // At the largest ring the gap is decisive.
    assert!(herlihy_latencies[2] > ac3wn_latencies[2] * 2.0);
}

#[test]
fn ac3wn_cost_overhead_is_exactly_one_extra_contract_and_call() {
    let mut s_wn = ring_scenario(4, 10, &ScenarioConfig::default());
    let wn = Ac3wn::new(protocol_cfg()).execute(&mut s_wn).unwrap();
    let mut s_h = ring_scenario(4, 10, &ScenarioConfig::default());
    let h = Herlihy::new(protocol_cfg()).execute(&mut s_h).unwrap();
    assert_eq!(wn.deployments, h.deployments + 1);
    assert_eq!(wn.calls, h.calls + 1);
    // Fees: one extra deploy_fee (4) + one extra call_fee (2).
    assert_eq!(wn.fees_paid, h.fees_paid + 6);
}

#[test]
fn aborted_swap_returns_every_locked_asset() {
    let mut s = two_party_scenario(50, 80, &ScenarioConfig::default());
    let alice = s.participants.get("alice").unwrap().address();
    let chain_a = s.asset_chains[0];
    // Bob never shows up.
    s.participants.get_mut("bob").unwrap().schedule_crash(CrashWindow::permanent(0));
    let report = Ac3wn::new(protocol_cfg()).execute(&mut s).unwrap();
    assert_eq!(report.decision, Some(false));
    assert_eq!(report.verdict(), AtomicityVerdict::AllRefunded);
    // Alice got her 50 back (minus the deployment fee she spent).
    assert_eq!(s.world.chain(chain_a).unwrap().balance_of(&alice), 1_000 - 4);
}
